(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§V).

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- fig8    -- Figure 8 only
     dune exec bench/main.exe -- sec51 fig9 table2 overhead micro
     dune exec bench/main.exe -- fig9 --quick   -- smaller sizes/sweep

   Absolute GFLOPS come from the machine model (DESIGN.md documents the
   testbed substitution); the comparisons of interest are orderings,
   factors and crossovers, printed next to the paper's numbers. *)

open Ir
module W = Workloads.Polybench
module MM = Machine.Machine_model
module P = Mlt.Pipeline

let quick = ref false

(* [--trace=FILE] wraps the selected sections in a Chrome trace sink, so
   a bench run can be inspected in Perfetto like any mlt-opt run.
   [--metrics=FILE] enables the Ir.Metrics registry and exports the
   merged snapshot when the selected sections finish. *)
let trace_file = ref None
let metrics_file = ref None

let sep title = Printf.printf "\n== %s ==\n%!" title

(* ---------------- Figure 8 ---------------------------------------------- *)

let fig8 () =
  sep "Figure 8: GEMM callsites detected by the tactic vs oracle";
  let n = 32 in
  let cases =
    [
      ("mm", W.mm ~ni:n ~nj:n ~nk:n (), 1);
      ("2mm", W.two_mm ~ni:n ~nj:n ~nk:n ~nl:n (), 2);
      ("3mm", W.three_mm ~ni:n ~nj:n ~nk:n ~nl:n ~nm:n (), 3);
      ("darknet", W.darknet_gemm ~m:n ~n ~k:n (), 1);
    ]
  in
  Printf.printf "%-10s %10s %8s %18s\n" "kernel" "detected" "oracle"
    "with-delinearize";
  List.iter
    (fun (name, src, oracle) ->
      let detected = P.count_gemm_callsites src in
      let with_delin = P.count_gemm_callsites ~delinearize:true src in
      Printf.printf "%-10s %10d %8d %18d%s\n" name detected oracle with_delin
        (if detected <> oracle then "   (missed: linearized accesses)" else ""))
    cases;
  Printf.printf
    "paper: mm/2mm/3mm fully detected; darknet missed (1-d linearized \
     accesses).\nThe paper proposes a delinearization pass as the fix; the \
     last column shows\nthis reproduction's implementation of it recovering \
     the callsite.\n"

(* ---------------- Section 5.1 ------------------------------------------- *)

let sec51 () =
  sep "Section 5.1: raising to affine.matmul + BLIS schedule (AMD 2920X)";
  let n = if !quick then 96 else 192 in
  let src = W.mm ~ni:n ~nj:n ~nk:n () in
  let flops = 2. *. float_of_int (n * n * n) in
  let machine = MM.amd_2920x in
  let g config = P.gflops config machine src ~flops in
  let clang = g P.Clang_O3 in
  let blis = g P.Mlt_affine_blis in
  Printf.printf "SGEMM %dx%dx%d (paper: 2088x2048)\n" n n n;
  Printf.printf "%-24s %10s %14s\n" "config" "GFLOPS" "paper GFLOPS";
  Printf.printf "%-24s %10.2f %14s\n" "clang -O3 (loops)" clang "1.76";
  Printf.printf "%-24s %10.2f %14s\n" "-raise-affine-to-affine" blis "23.59";
  Printf.printf "speedup: %.1fx   (paper: 13.4x)\n" (blis /. clang)

(* ---------------- Figure 9 ---------------------------------------------- *)

let fig9_machine machine =
  sep
    (Printf.sprintf
       "Figure 9 (%s) -- GFLOPS; vendor-library reference line = %.1f"
       machine.MM.name machine.MM.blas_peak_gflops);
  let configs = P.all_figure9_configs in
  Printf.printf "%-16s" "kernel";
  List.iter (fun c -> Printf.printf " %12s" (P.config_name c)) configs;
  Printf.printf "\n";
  let geo = Array.make (List.length configs) 0. in
  let count = ref 0 in
  List.iter
    (fun (name, src, flops) ->
      incr count;
      Printf.printf "%-16s%!" name;
      List.iteri
        (fun i config ->
          let g = P.gflops config machine src ~flops in
          geo.(i) <- geo.(i) +. log g;
          Printf.printf " %12.2f%!" g)
        configs;
      Printf.printf "\n")
    (W.figure9_suite ());
  Printf.printf "%-16s" "geomean";
  Array.iter
    (fun acc -> Printf.printf " %12.2f" (exp (acc /. float_of_int !count)))
    geo;
  Printf.printf "\n"

let fig9 () =
  List.iter fig9_machine MM.platforms;
  Printf.printf
    "\npaper shape: clang lowest everywhere; pluto-best wins the level-2 \
     kernels (atax..mvt);\nMLT-BLAS wins every level-3 kernel and \
     contraction; MLT-Linalg sits between clang and pluto.\n"

(* ---------------- Table II ---------------------------------------------- *)

let table2 () =
  sep "Table II: matrix-chain reordering at the Linalg level (AMD 2920X)";
  let machine = MM.amd_2920x in
  let chains =
    [
      ([ 800; 1100; 900; 1200; 100 ], "(A1x(A2x(A3xA4)))", 6.08);
      ([ 1000; 2000; 900; 1500; 600; 800 ], "((A1x(A2x(A3xA4)))xA5)", 2.27);
      ( [ 1500; 400; 2000; 2200; 600; 1400; 1000 ],
        "(A1x((((A2xA3)xA4)xA5)xA6))", 3.67 );
    ]
  in
  Printf.printf "%-4s %-30s %11s %11s %9s %9s\n" "n" "optimal order" "time IP"
    "time OP" "speedup" "paper";
  List.iter
    (fun (dims, paper_op, paper_speedup) ->
      let src = W.matrix_chain dims in
      let time ~reorder =
        let m = Met.Emit_affine.translate src in
        let f = Option.get (Core.find_func m "chain") in
        ignore (Transforms.Canonicalize.run f);
        ignore (Mlt.Tactics.raise_to_linalg f);
        if reorder then ignore (Mlt.Raise_chain.reorder f);
        ignore (Mlt.To_blas.run f);
        Transforms.Lower_linalg.run f;
        Verifier.verify m;
        (Machine.Perf.time_func machine f).Machine.Perf.seconds
      in
      let t_ip = time ~reorder:false in
      let t_op = time ~reorder:true in
      let tree, _ = Mlt.Matrix_chain.optimal (Array.of_list dims) in
      let found = Mlt.Matrix_chain.to_string tree in
      Printf.printf "%-4d %-30s %10.4fs %10.4fs %8.2fx %8.2fx%s\n"
        (List.length dims - 1)
        found t_ip t_op (t_ip /. t_op) paper_speedup
        (if found <> paper_op then "  ORDER MISMATCH vs paper " ^ paper_op
         else ""))
    chains

(* ---------------- Compile-time overhead (§5.2) -------------------------- *)

let overhead () =
  sep "Compile-time overhead of raising (16 benchmarks, affine -> SCF)";
  let sources = List.map (fun (_, s, _) -> s) (W.figure9_suite ()) in
  let reps = if !quick then 1 else 3 in
  let measure mode =
    let ts = List.init reps (fun _ -> P.compile_time mode sources) in
    List.fold_left min infinity ts
  in
  let base = measure `Baseline in
  let with_mlt = measure `With_mlt in
  let match_only = measure `Match_only in
  Printf.printf "lowering only:        %.4f s\n" base;
  Printf.printf "with MLT raising:     %.4f s\n" with_mlt;
  Printf.printf "tactic matching only: %.4f s (%.2f ms/kernel)\n" match_only
    (match_only /. 16. *. 1e3);
  Printf.printf
    "overhead:             %+.1f%%   (paper: +12%% -- 0.64 s vs 0.72 s)\n"
    ((with_mlt -. base) /. base *. 100.);
  Printf.printf
    "note: the percentage is not directly comparable — the paper's \
     baseline\nincludes MLIR's full conversion to the LLVM dialect, ~two \
     orders of\nmagnitude more lowering work than this reproduction's \
     affine->SCF step.\nThe paper's actual claim — declarative matching is \
     near-free, unlike\nIDL's +82%% constraint solving — is visible in the \
     absolute matching cost.\n";
  (* Per-pass attribution of the with-MLT pipeline: one instrumented run
     over all kernels, aggregated by pass. *)
  let pm = Pass.create_manager () in
  ignore (P.compile_time ~pm `With_mlt sources);
  Printf.printf
    "\nper-pass breakdown (with-mlt, 1 run over %d kernels):\n"
    (List.length sources);
  print_string (Pass.summary_table pm);
  Printf.printf "pass-stats: %s\n" (Pass.summary_json pm)

(* ---------------- Micro benchmarks (bechamel) ---------------------------- *)

let micro () =
  sep "Infrastructure micro-benchmarks (bechamel)";
  let open Bechamel in
  let gemm_src = W.mm ~ni:16 ~nj:16 ~nk:16 () in
  let prebuilt = Met.Emit_affine.translate gemm_src in
  let body =
    let f = Option.get (Core.find_func prebuilt "mm") in
    let loops =
      Affine.Loops.perfect_nest (List.hd (Affine.Loops.top_level_loops f))
    in
    Affine.Affine_ops.for_body (List.nth loops 2)
  in
  let match_only () =
    let ctx = Matchers.Access.create_ctx () in
    let i = Matchers.Access.placeholder ctx in
    let j = Matchers.Access.placeholder ctx in
    let k = Matchers.Access.placeholder ctx in
    let c = Matchers.Access.array_placeholder ctx in
    let a = Matchers.Access.array_placeholder ctx in
    let b = Matchers.Access.array_placeholder ctx in
    let open Matchers.Access in
    ignore
      (match_block ctx
         (Contraction
            {
              out = access c [ p i; p j ];
              in1 = access a [ p i; p k ];
              in2 = access b [ p k; p j ];
            })
         body)
  in
  let raise_gemm () = ignore (P.prepare P.Mlt_linalg gemm_src) in
  let chain_dp () =
    ignore
      (Mlt.Matrix_chain.optimal [| 30; 35; 15; 5; 10; 20; 25; 40; 12; 33; 7 |])
  in
  let cache = MM.fresh_hierarchy MM.intel_i9 in
  let cache_1k () =
    for i = 0 to 999 do
      ignore (Machine.Cache.access_hierarchy cache (i * 64))
    done
  in
  let tdl_to_tds () =
    ignore (Tdl.Frontend.lower_source Tdl.Frontend.ttgt_tdl)
  in
  let tests =
    [
      Test.make ~name:"access-matcher (gemm stmt)" (Staged.stage match_only);
      Test.make ~name:"tdl->tds (ttgt tactic)" (Staged.stage tdl_to_tds);
      Test.make ~name:"full mlt-linalg pipeline (16^3 gemm)"
        (Staged.stage raise_gemm);
      Test.make ~name:"matrix-chain DP (n=10)" (Staged.stage chain_dp);
      Test.make ~name:"cache hierarchy (1k accesses)" (Staged.stage cache_1k);
    ]
  in
  List.iter
    (fun t ->
      (* --quick keeps this usable as a CI smoke test (scripts/check.sh):
         the numbers are noisier but every benchmarked path still runs. *)
      let cfg =
        if !quick then
          Benchmark.cfg ~limit:200 ~quota:(Time.millisecond 50.) ()
        else
          Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
      in
      let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] t in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name res ->
          match Analyze.OLS.estimates res with
          | Some [ est ] -> Printf.printf "%-42s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-42s (no estimate)\n" name)
        results)
    tests

(* ---------------- Interpreter engines ----------------------------------- *)

(* Walk-vs-compiled throughput on loop-level IR (no library-call fast
   paths): the staged engine's reason to exist is executing raw affine/scf
   loop nests, where the walker pays hash lookups and string dispatch per
   operation per iteration. Also writes BENCH_interp.json for machines. *)
let interp () =
  sep "Interpreter engines: tree-walking oracle vs staged closures";
  let n = if !quick then 16 else 64 in
  let lower_to_scf src =
    let m = Met.Emit_affine.translate src in
    Core.walk m (fun op ->
        if Core.is_func op then Transforms.Lower_affine.run op);
    Verifier.verify m;
    m
  in
  let cases =
    [
      ("mm/affine", Met.Emit_affine.translate (W.mm ~ni:n ~nj:n ~nk:n ()));
      ("mm/scf", lower_to_scf (W.mm ~ni:n ~nj:n ~nk:n ()));
      ( "atax/affine",
        Met.Emit_affine.translate (W.atax ~m:(4 * n) ~n:(4 * n) ()) );
      ("gesummv/affine", Met.Emit_affine.translate (W.gesummv ~n:(4 * n) ()));
    ]
  in
  let func m =
    List.hd (List.filter Core.is_func (Core.ops_of_block (Core.module_block m)))
  in
  let fresh_args f =
    List.mapi
      (fun i (p : Core.value) ->
        let b = Interp.Buffer.of_type p.Core.v_typ in
        Interp.Buffer.randomize ~seed:i b;
        b)
      (Core.func_args f)
  in
  let time_once run =
    let t0 = Unix.gettimeofday () in
    run ();
    Unix.gettimeofday () -. t0
  in
  let best reps run = List.fold_left min infinity (List.init reps (fun _ -> time_once run)) in
  let reps = if !quick then 1 else 3 in
  Printf.printf "%-16s %12s %12s %9s %12s %9s\n" "kernel" "walk (s)"
    "compiled (s)" "speedup" "stage (s)" "checked";
  let rows =
    List.map
      (fun (name, m) ->
        let f = func m in
        let stage_t = time_once (fun () -> ignore (Interp.Compile.compile_func f)) in
        let compiled = Interp.Compile.compile_func f in
        (* Differential sanity on this exact module before timing: the two
           engines must produce bit-identical buffers. *)
        let wargs = fresh_args f and cargs = fresh_args f in
        Interp.Eval.run_func ~engine:Interp.Eval.Walk f wargs;
        Interp.Compile.execute compiled cargs;
        List.iter2
          (fun a b ->
            if Interp.Buffer.max_abs_diff a b <> 0. then
              failwith ("interp bench: engines disagree on " ^ name))
          wargs cargs;
        let walk_t =
          best reps (fun () ->
              Interp.Eval.run_func ~engine:Interp.Eval.Walk f wargs)
        in
        let compiled_t =
          best reps (fun () -> Interp.Compile.execute compiled cargs)
        in
        Printf.printf "%-16s %12.6f %12.6f %8.1fx %12.6f %6d/%-3d\n" name
          walk_t compiled_t (walk_t /. compiled_t) stage_t
          compiled.Interp.Compile.c_checked_accesses
          (compiled.Interp.Compile.c_checked_accesses
          + compiled.Interp.Compile.c_unchecked_accesses);
        (name, walk_t, compiled_t, stage_t, compiled))
      cases
  in
  Printf.printf
    "(speedup = walker / compiled wall-clock; stage = one-time closure \
     compilation;\n checked = accesses the interval analysis could not prove \
     in bounds.)\n";
  Support.Atomic_io.with_file ~path:"BENCH_interp.json" (fun oc ->
  Printf.fprintf oc
    "{\n  \"run_meta\": %s,\n  \"quick\": %b,\n  \"n\": %d,\n  \"results\": [\n"
    (Support.Run_meta.to_string ())
    !quick n;
  List.iteri
    (fun i (name, walk_t, compiled_t, stage_t, compiled) ->
      Printf.fprintf oc
        "    {\"kernel\": %S, \"walk_s\": %.9f, \"compiled_s\": %.9f, \
         \"speedup\": %.2f, \"stage_s\": %.9f, \"checked_accesses\": %d, \
         \"unchecked_accesses\": %d}%s\n"
        name walk_t compiled_t (walk_t /. compiled_t) stage_t
        compiled.Interp.Compile.c_checked_accesses
        compiled.Interp.Compile.c_unchecked_accesses
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n");
  Printf.printf "wrote BENCH_interp.json\n"

(* ---------------- Frozen pattern sets ------------------------------------ *)

(* Compiled dispatch (root index + prefix decision tree) vs the PR 4
   root-index-only proxy ([Frozen.strip_prefixes]) vs the unindexed scan
   ([Frozen.relax]), on the heaviest pattern-set workload the repo has:
   progressive raising from the SCF level (SCF -> affine -> linalg) with
   one combined greedy set. All three variants are contract-preserving
   relaxations of the same descriptors, so the comparison isolates
   dispatch: identical printed IR and application counts are asserted
   per kernel, only the attempt counters may differ. Writes
   BENCH_patterns.json. *)
let patterns_section () =
  sep "Frozen pattern sets: compiled dispatch vs root index vs unindexed scan";
  let build_set () =
    Transforms.Raise_scf.patterns ()
    @ [ Transforms.Dce.pattern () ]
    @ Transforms.Canonicalize.patterns ()
    @ Mlt.Tactics.all ()
  in
  let to_scf src =
    let m = Met.Emit_affine.translate src in
    Core.walk m (fun op ->
        if Core.is_func op then Transforms.Lower_affine.run op);
    Verifier.verify m;
    m
  in
  (* Build each variant's set independently so no matcher or stats state
     is shared between the runs being compared. The driver is
     [apply_sweeps] — the one the in-tree raise-scf pass uses — so each
     op is visited once per sweep and the attempt counters measure
     dispatch over the real op population rather than worklist churn. *)
  let variant_frozen = function
    | `Compiled -> Rewriter.freeze (build_set ())
    | `Stripped -> Rewriter.Frozen.strip_prefixes (Rewriter.freeze (build_set ()))
    | `Relaxed -> Rewriter.Frozen.relax (Rewriter.freeze (build_set ()))
  in
  let run_variant variant src =
    let m = to_scf src in
    let fz = variant_frozen variant in
    let attempts0, _ = Rewriter.counter_totals () in
    let apps = Rewriter.apply_sweeps m fz in
    let attempts1, _ = Rewriter.counter_totals () in
    (apps, attempts1 - attempts0, Printer.op_to_string m)
  in
  let set_size = List.length (build_set ()) in
  Printf.printf
    "combined set: %d patterns (scf-raise + dce + canonicalize + tactics)\n"
    set_size;
  Printf.printf "%-16s %10s %10s %10s %8s %8s %6s\n" "kernel" "compiled"
    "rootonly" "unindexed" "ratio" "applied" "same";
  let total_compiled = ref 0
  and total_stripped = ref 0
  and total_relaxed = ref 0 in
  let mismatches = ref 0 in
  let rows =
    List.map
      (fun (name, src, _) ->
        let apps_c, att_c, ir_c = run_variant `Compiled src in
        let apps_s, att_s, ir_s = run_variant `Stripped src in
        let apps_r, att_r, ir_r = run_variant `Relaxed src in
        let same =
          apps_c = apps_r && apps_c = apps_s && String.equal ir_c ir_r
          && String.equal ir_c ir_s
        in
        if not same then incr mismatches;
        total_compiled := !total_compiled + att_c;
        total_stripped := !total_stripped + att_s;
        total_relaxed := !total_relaxed + att_r;
        Printf.printf "%-16s %10d %10d %10d %7.1fx %8d %6s\n" name att_c att_s
          att_r
          (float_of_int att_r /. float_of_int (max 1 att_c))
          apps_c
          (if same then "yes" else "NO");
        (name, att_c, att_s, att_r, apps_c, same))
      (W.figure9_suite ())
  in
  let ratio = float_of_int !total_relaxed /. float_of_int (max 1 !total_compiled) in
  let prefix_ratio =
    float_of_int !total_stripped /. float_of_int (max 1 !total_compiled)
  in
  Printf.printf "%-16s %10d %10d %10d %7.1fx\n" "total" !total_compiled
    !total_stripped !total_relaxed ratio;
  Printf.printf
    "compiled dispatch attempts %.1fx fewer matches than the unindexed scan \
     (target: >= 5x)\nand %.2fx fewer than the root index alone -- %s\n"
    ratio prefix_ratio
    (if ratio >= 5. && !total_compiled < !total_stripped && !mismatches = 0
     then "OK"
     else "FAILED (ratio below target, no prefix gain, or result mismatch)");

  (* Dispatch micro-benchmark: one full greedy raise of an 8^3 gemm at
     the SCF level per run, frozen sets prebuilt (freezing compiles the
     TDL tactics; reusing the sets matches how passes hold them). *)
  let open Bechamel in
  let gemm_src = W.mm ~ni:8 ~nj:8 ~nk:8 () in
  let fz_compiled = variant_frozen `Compiled in
  let fz_stripped = variant_frozen `Stripped in
  let fz_relaxed = variant_frozen `Relaxed in
  let greedy fz () = ignore (Rewriter.apply_sweeps (to_scf gemm_src) fz) in
  let micro_results = ref [] in
  List.iter
    (fun (mname, fz) ->
      let cfg =
        if !quick then
          Benchmark.cfg ~limit:200 ~quota:(Time.millisecond 50.) ()
        else
          Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
      in
      let t = Test.make ~name:mname (Staged.stage (greedy fz)) in
      let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] t in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun n res ->
          match Analyze.OLS.estimates res with
          | Some [ est ] ->
              micro_results := (n, est) :: !micro_results;
              Printf.printf "%-42s %12.1f ns/run\n" n est
          | _ -> Printf.printf "%-42s (no estimate)\n" n)
        results)
    [
      ("greedy scf raise 8^3 gemm (compiled)", fz_compiled);
      ("greedy scf raise 8^3 gemm (root-only)", fz_stripped);
      ("greedy scf raise 8^3 gemm (unindexed)", fz_relaxed);
    ];

  Support.Atomic_io.with_file ~path:"BENCH_patterns.json" (fun oc ->
  Printf.fprintf oc
    "{\n  \"run_meta\": %s,\n  \"quick\": %b,\n  \"set_size\": %d,\n  \
     \"total_attempts_indexed\": \
     %d,\n  \"total_attempts_rootonly\": %d,\n  \
     \"total_attempts_unindexed\": %d,\n  \"attempt_ratio\": %.2f,\n  \
     \"prefix_attempt_ratio\": %.3f,\n  \"results_identical\": %b,\n  \
     \"kernels\": [\n"
    (Support.Run_meta.to_string ())
    !quick set_size !total_compiled !total_stripped !total_relaxed ratio
    prefix_ratio (!mismatches = 0);
  List.iteri
    (fun i (name, att_c, att_s, att_r, apps, same) ->
      Printf.fprintf oc
        "    {\"kernel\": %S, \"attempts_indexed\": %d, \
         \"attempts_rootonly\": %d, \"attempts_unindexed\": %d, \
         \"applications\": %d, \"identical\": %b}%s\n"
        name att_c att_s att_r apps same
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n  \"micro_ns_per_run\": {\n";
  let micro = List.rev !micro_results in
  List.iteri
    (fun i (n, est) ->
      Printf.fprintf oc "    %S: %.1f%s\n" n est
        (if i = List.length micro - 1 then "" else ","))
    micro;
  Printf.fprintf oc "  }\n}\n");
  Printf.printf "wrote BENCH_patterns.json\n";

  (* Tracing call sites stay in the rewrite hot path permanently; with no
     sink installed each must cost no more than a ref read. Budget is
     generous (CI noise) — a regression to eager argument construction
     would blow past it by orders of magnitude. *)
  if Trace.enabled () then
    Printf.printf
      "disabled-trace overhead check skipped (a trace sink is installed)\n"
  else begin
    let calls = 2_000_000 in
    let t0 = Unix.gettimeofday () in
    for i = 1 to calls do
      Trace.instant
        ~args:[ ("i", Trace.A_int i) ]
        ~cat:"bench" "noop"
    done;
    let per_call_ns =
      (Unix.gettimeofday () -. t0) /. float_of_int calls *. 1e9
    in
    Printf.printf "disabled-trace emit: %.1f ns/call over %d calls (budget: 50 ns)\n"
      per_call_ns calls;
    if per_call_ns > 50. then
      Support.Diag.errorf
        "bench patterns: disabled tracing costs %.1f ns/call (> 50 ns budget)"
        per_call_ns
  end;
  (* The metrics registry shares the rewrite hot path with tracing (the
     cache and interpreter call [observe] per operation) and the same
     budget: disabled, an update is one atomic read. *)
  if Metrics.enabled () then
    Printf.printf
      "disabled-metrics overhead check skipped (--metrics is on)\n"
  else begin
    let h = Metrics.histogram "bench_noop_seconds" in
    let calls = 2_000_000 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to calls do
      Metrics.observe h 1e-6
    done;
    let per_call_ns =
      (Unix.gettimeofday () -. t0) /. float_of_int calls *. 1e9
    in
    Printf.printf
      "disabled-metrics observe: %.1f ns/call over %d calls (budget: 50 ns)\n"
      per_call_ns calls;
    if per_call_ns > 50. then
      Support.Diag.errorf
        "bench patterns: disabled metrics cost %.1f ns/call (> 50 ns budget)"
        per_call_ns
  end;
  if ratio < 5. then
    Support.Diag.errorf
      "bench patterns: attempt reduction %.1fx below the 5x target" ratio;
  if !total_compiled >= !total_stripped then
    Support.Diag.errorf
      "bench patterns: prefix trees reduced nothing over the root index \
       (%d vs %d attempts)"
      !total_compiled !total_stripped;
  if !mismatches > 0 then
    Support.Diag.errorf
      "bench patterns: dispatch variants diverge on %d kernels" !mismatches

(* ---------------- Scale: million-op modules ------------------------------ *)

(* The gate for the compiled matcher automaton + hash-consing work: a
   synthesized module of >= 1M ops (deep loop-nest batteries from
   [Workloads.Polybench.scale_battery], lowered to the SCF level and
   cloned to the target size), raised and canonicalized end-to-end with
   the combined greedy set. Three dispatch variants run on structurally
   identical fresh modules: compiled (root index + prefix decision
   trees), root-only ([Frozen.strip_prefixes], the PR 4 proxy) and
   unindexed ([Frozen.relax]). Wall-clock, attempts, and printed-IR
   digests are recorded in BENCH_scale.json; the >= 5x end-to-end target
   vs the unindexed scan is always measured but, like the batch bench,
   only asserted under MLT_BENCH_ASSERT_SPEEDUP=1 (shared CI hosts).
   Result identity is always asserted. *)
let scale () =
  sep "Scale: raise + canonicalize a synthesized million-op module";
  let target = if !quick then 60_000 else 1_000_000 in
  let build_set () =
    Transforms.Raise_scf.patterns ()
    @ [ Transforms.Dce.pattern () ]
    @ Transforms.Canonicalize.patterns ()
    @ Mlt.Tactics.all ()
  in
  (* Seed functions: every battery kernel translated once; the
     synthesized module clones these. Most seeds stay at the affine
     level — MET's real input, where raising means affine -> linalg —
     and one ("mm") is additionally lowered to SCF so every clone batch
     also exercises the full progressive SCF -> affine -> linalg path.
     Cloning is deterministic, so the per-variant modules are
     structurally identical and their printed IR must match
     byte-for-byte after rewriting. *)
  let seeds =
    List.map
      (fun (name, src) ->
        let m = Met.Emit_affine.translate src in
        if String.equal name "mm" then
          Core.walk m (fun op ->
              if Core.is_func op then Transforms.Lower_affine.run op);
        Verifier.verify m;
        let f =
          match
            List.filter Core.is_func (Core.ops_of_block (Core.module_block m))
          with
          | [ f ] -> f
          | _ -> Support.Diag.errorf "bench scale: %s has multiple funcs" name
        in
        let n = ref 0 in
        Core.walk f (fun _ -> incr n);
        (name, f, !n))
      (W.scale_battery ())
  in
  let seed_arr = Array.of_list seeds in
  let synth () =
    let m = Core.create_module () in
    let blk = Core.module_block m in
    let total = ref 0 and i = ref 0 in
    while !total < target do
      let name, f, n = seed_arr.(!i mod Array.length seed_arr) in
      let c = Core.clone_op f in
      Core.set_attr c "sym_name"
        (Attr.Str (Printf.sprintf "%s_%d" name !i));
      Core.append_op blk c;
      total := !total + n;
      incr i
    done;
    (m, !total, !i)
  in
  let _, probe_ops, probe_funcs = synth () in
  Printf.printf
    "synthesized module: %d ops in %d functions (%d seed kernels, target %d)\n%!"
    probe_ops probe_funcs (Array.length seed_arr) target;
  (* Two regimes per variant, on the same fresh module:

     - end-to-end: raise + canonicalize the synthesized module to
       fixpoint. Dominated by the applied rewrites themselves (raising a
       nest to linalg costs ~10us whichever dispatcher found it), which
       every variant pays identically, so dispatch gains are diluted —
       this regime records the honest whole-compile number.
     - steady-state: re-run the same driver on the now-canonical module.
       Zero rewrites fire, so this isolates what a fixpoint driver pays
       per sweep — the dispatch-bound regime the compiled automaton
       targets, and the one that recurs every time a pipeline
       re-canonicalizes an already-clean large module. *)
  let run_variant label make_frozen =
    (* Fresh module and fresh pattern set per variant: no matcher state,
       stats, or interned-term churn is shared between timed runs. *)
    let m, ops, _ = synth () in
    let fz = make_frozen (Rewriter.freeze (build_set ())) in
    (* Equalize heap state across variants: the first timed run would
       otherwise pay the major-heap growth the others inherit. *)
    Gc.compact ();
    let attempts0, _ = Rewriter.counter_totals () in
    let t0 = Unix.gettimeofday () in
    let apps = Rewriter.apply_sweeps m fz in
    let seconds = Unix.gettimeofday () -. t0 in
    (* Compact again before the steady-state reps: the end-to-end phase
       leaves variant-dependent amounts of garbage (the unindexed scan
       allocates a context per attempted pattern), and the GC share of a
       100ms measurement would otherwise swamp the dispatch difference. *)
    Gc.compact ();
    let steady = ref infinity in
    for _ = 1 to 3 do
      let t1 = Unix.gettimeofday () in
      let re_apps = Rewriter.apply_sweeps m fz in
      steady := Float.min !steady (Unix.gettimeofday () -. t1);
      if re_apps <> 0 then
        Support.Diag.errorf
          "bench scale: %s re-sweep applied %d rewrites on a canonical module"
          label re_apps
    done;
    let steady = !steady in
    let attempts1, _ = Rewriter.counter_totals () in
    let digest = Digest.to_hex (Digest.string (Printer.op_to_string m)) in
    Printf.printf "%-10s %9.3f s %12.4f s %10d attempts %8d applied  %s\n%!"
      label seconds steady (attempts1 - attempts0) apps digest;
    (seconds, steady, attempts1 - attempts0, apps, digest, ops)
  in
  Printf.printf "%-10s %11s %14s %19s %16s  %s\n" "variant" "end-to-end"
    "steady-state" "attempts" "applied" "ir-digest";
  (* Untimed warm-up: page in the code paths and grow the heap once. *)
  ignore (run_variant "(warm-up)" Fun.id);
  let sec_c, std_c, att_c, apps_c, dig_c, ops_c = run_variant "compiled" Fun.id in
  let sec_s, std_s, att_s, apps_s, dig_s, _ =
    run_variant "root-only" Rewriter.Frozen.strip_prefixes
  in
  let sec_r, std_r, att_r, apps_r, dig_r, _ =
    run_variant "unindexed" Rewriter.Frozen.relax
  in
  let identical =
    apps_c = apps_s && apps_c = apps_r && String.equal dig_c dig_s
    && String.equal dig_c dig_r
  in
  let speedup = sec_r /. sec_c in
  let speedup_vs_root = sec_s /. sec_c in
  let steady_speedup = std_r /. std_c in
  let attempt_ratio = float_of_int att_r /. float_of_int (max 1 att_c) in
  Printf.printf
    "end-to-end: %.2fx vs unindexed, %.2fx vs root index (rewrite work \
     dominates — see docs/PERF.md)\n\
     steady-state dispatch: %.2fx vs unindexed (target >= 5x), %.2fx vs \
     root index\n\
     match attempts: %.1fx fewer than unindexed (deterministic; always \
     asserted >= 5x); results %s\n"
    speedup speedup_vs_root steady_speedup (std_s /. std_c) attempt_ratio
    (if identical then "identical" else "DIVERGED");
  let ts = Typ.interner_stats ()
  and ats = Attr.interner_stats ()
  and es = Affine_expr.interner_stats ()
  and ms = Affine_map.interner_stats () in
  Printf.printf
    "interners: typ %d nodes (%d hits), attr %d (%d), affine-expr %d (%d), \
     affine-map %d (%d)\n"
    ts.Support.Intern.size ts.Support.Intern.hits ats.Support.Intern.size
    ats.Support.Intern.hits es.Support.Intern.size es.Support.Intern.hits
    ms.Support.Intern.size ms.Support.Intern.hits;
  let assert_speedup =
    match Sys.getenv_opt "MLT_BENCH_ASSERT_SPEEDUP" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false
  in
  let intern_json (s : Support.Intern.stats) =
    Printf.sprintf "{\"size\": %d, \"hits\": %d, \"misses\": %d}"
      s.Support.Intern.size s.Support.Intern.hits s.Support.Intern.misses
  in
  Support.Atomic_io.write_file ~path:"BENCH_scale.json"
    (Printf.sprintf
       "{\n  \"run_meta\": %s,\n  \"quick\": %b,\n  \"target_ops\": %d,\n  \"module_ops\": %d,\n  \
        \"module_funcs\": %d,\n  \"set_size\": %d,\n  \"compiled_seconds\": \
        %.6f,\n  \"rootonly_seconds\": %.6f,\n  \"unindexed_seconds\": \
        %.6f,\n  \"compiled_steady_seconds\": %.6f,\n  \
        \"rootonly_steady_seconds\": %.6f,\n  \"unindexed_steady_seconds\": \
        %.6f,\n  \"compiled_attempts\": %d,\n  \"rootonly_attempts\": %d,\n  \
        \"unindexed_attempts\": %d,\n  \"applications\": %d,\n  \
        \"attempt_ratio\": %.2f,\n  \"speedup\": %.3f,\n  \
        \"speedup_vs_rootonly\": %.3f,\n  \"steady_speedup\": %.3f,\n  \
        \"speedup_target\": 5.0,\n  \"speedup_asserted\": %b,\n  \
        \"results_identical\": %b,\n  \"intern_typ\": %s,\n  \"intern_attr\": \
        %s,\n  \"intern_affine_expr\": %s,\n  \"intern_affine_map\": %s\n}\n"
       (Support.Run_meta.to_string ())
       !quick target ops_c probe_funcs
       (List.length (build_set ()))
       sec_c sec_s sec_r std_c std_s std_r att_c att_s att_r apps_c
       attempt_ratio speedup speedup_vs_root steady_speedup assert_speedup
       identical (intern_json ts) (intern_json ats) (intern_json es)
       (intern_json ms));
  Printf.printf "wrote BENCH_scale.json\n";
  if not identical then
    Support.Diag.errorf
      "bench scale: dispatch variants produced different IR (applied \
       %d/%d/%d)"
      apps_c apps_s apps_r;
  (* Attempt counts are deterministic — independent of host load and GC —
     so this floor is asserted unconditionally, like the patterns gate. *)
  if attempt_ratio < 5. then
    Support.Diag.errorf
      "bench scale: attempt reduction %.1fx below the 5x floor" attempt_ratio;
  if assert_speedup && steady_speedup < 5. then
    Support.Diag.errorf
      "bench scale: %.2fx steady-state dispatch speedup below the 5x target"
      steady_speedup;
  if not assert_speedup then
    Printf.printf
      "(speedup target 5x reported, not asserted — set \
       MLT_BENCH_ASSERT_SPEEDUP=1 to enforce)\n"

(* ---------------- Schedule autotuner ------------------------------------- *)

(* The machine-model autotuner end-to-end: search the gemm schedule
   space (Pluto tilings/fusions/interchange + BLIS blockings) as
   transform scripts on a domain pool, and require the winner to be at
   least as fast on the model as Pluto_default — the floor the paper's
   tuned schedules always clear. Writes BENCH_tune.json ("results" holds
   every candidate). *)
let tune_section () =
  sep "Schedule autotuner: transform-script search on the machine model";
  P.register_dialects ();
  let machine = MM.amd_2920x in
  let n = if !quick then 64 else 128 in
  let src = W.mm ~ni:n ~nj:n ~nk:n () in
  let flops = 2. *. float_of_int (n * n * n) in
  let translate () = Met.Emit_affine.translate src in
  let trips =
    Tune.max_trip_count (Option.get (Core.find_func (translate ()) "mm"))
  in
  let space = Tune.gemm_space ~quick:!quick ~max_trip:trips () in
  let cores = Domain.recommended_domain_count () in
  let t0 = Unix.gettimeofday () in
  let outcome = Tune.search ~domains:cores ~machine ~translate space in
  let wall = Unix.gettimeofday () -. t0 in
  let st = outcome.Tune.o_stats in
  let default_report = P.time P.Pluto_default machine src in
  let default_seconds = default_report.Machine.Perf.seconds in
  Printf.printf
    "gemm %dx%dx%d on %s: %d candidates (%d evaluated) on %d domains in \
     %.3fs\n"
    n n n machine.MM.name st.Tune.t_candidates st.Tune.t_evaluated cores wall;
  Printf.printf "pluto-default:   %.6f s (%6.2f GFLOPS)\n" default_seconds
    (flops /. default_seconds /. 1e9);
  Printf.printf "best (%s): %.6f s (%6.2f GFLOPS)\n"
    outcome.Tune.o_best.Tune.c_name st.Tune.t_best_seconds
    (flops /. st.Tune.t_best_seconds /. 1e9);
  let module J = Support.Json in
  let results =
    List.map
      (fun (ev : Tune.evaluation) ->
        J.Obj
          [
            ("name", J.Str ev.Tune.ev_candidate.Tune.c_name);
            ( "seconds",
              match ev.Tune.ev_seconds with
              | Some s -> J.Num s
              | None -> J.Null );
            ( "error",
              match ev.Tune.ev_error with
              | Some e -> J.Str e
              | None -> J.Null );
          ])
      outcome.Tune.o_evaluations
  in
  let best_script =
    Transform.Script.print
      (Transform.Script.of_steps outcome.Tune.o_best.Tune.c_steps)
  in
  Support.Atomic_io.write_file ~path:"BENCH_tune.json"
    (J.to_string
       (J.Obj
          [
            ("run_meta", Support.Run_meta.json ());
            ("quick", J.Bool !quick);
            ("n", J.num_int n);
            ("machine", J.Str machine.MM.name);
            ("domains", J.num_int cores);
            ("wall_seconds", J.Num wall);
            ("candidates", J.num_int st.Tune.t_candidates);
            ("evaluated", J.num_int st.Tune.t_evaluated);
            ("pluto_default_seconds", J.Num default_seconds);
            ("best_name", J.Str outcome.Tune.o_best.Tune.c_name);
            ("best_seconds", J.Num st.Tune.t_best_seconds);
            ("best_script", J.Str best_script);
            ("results", J.List results);
          ])
    ^ "\n");
  Printf.printf "wrote BENCH_tune.json\n";
  (* The model is deterministic, so this floor holds on any host: the
     searched space contains Pluto_default itself. *)
  if st.Tune.t_best_seconds > default_seconds +. 1e-12 then
    Support.Diag.errorf
      "bench tune: best schedule %.6fs slower than pluto-default %.6fs"
      st.Tune.t_best_seconds default_seconds

(* ---------------- Sharded batch compilation ------------------------------ *)

(* The mlt-batch architecture end-to-end: the polybench manifest compiled
   sequentially (the oracle) and on a 4-domain pool must produce
   byte-identical per-input IR and identical pass-stat signatures; a
   deliberately crashing input must fail only its own manifest entry.
   The >= 2.5x wall-clock speedup target is always measured and
   reported, but only asserted with MLT_BENCH_ASSERT_SPEEDUP=1 — core
   count alone says nothing about deliverable throughput on shared CI
   hosts. Writes BENCH_batch.json. *)
let batch () =
  sep "Sharded batch compilation: 4-domain pool vs sequential oracle";
  let pool_domains = 4 in
  let reps = if !quick then 2 else 4 in
  let configs = [| P.Mlt_linalg; P.Mlt_blas; P.Mlt_affine_blis |] in
  let entries =
    List.concat
      (List.init reps (fun rep ->
           List.mapi
             (fun i (name, src, _) ->
               {
                 Batch.Manifest.e_name = Printf.sprintf "%s#%d" name rep;
                 e_source = Batch.Manifest.Inline src;
                 e_schedule = Mlt.Pipeline.Config configs.((i + rep) mod Array.length configs);
               })
             (W.figure9_suite ())))
  in
  let manifest = Batch.Manifest.of_entries entries in
  Printf.printf "manifest: %d entries (%d kernels x %d reps)\n%!"
    (Batch.Manifest.size manifest)
    (List.length (W.figure9_suite ()))
    reps;
  let seq = Batch.Driver.run ~domains:1 manifest in
  let par = Batch.Driver.run ~domains:pool_domains manifest in
  (* Per-input determinism: byte-identical IR, identical stats. *)
  let ir_mismatches = ref 0 and stat_mismatches = ref 0 in
  List.iter2
    (fun (s : Batch.Driver.entry_result) (p : Batch.Driver.entry_result) ->
      if not (String.equal s.Batch.Driver.r_ir p.Batch.Driver.r_ir) then begin
        incr ir_mismatches;
        Printf.printf "  IR MISMATCH on %s\n" s.Batch.Driver.r_name
      end;
      if
        not
          (String.equal
             (Batch.Driver.result_signature s)
             (Batch.Driver.result_signature p))
      then begin
        incr stat_mismatches;
        Printf.printf "  STAT MISMATCH on %s\n" s.Batch.Driver.r_name
      end)
    seq.Batch.Driver.rp_results par.Batch.Driver.rp_results;
  let aggregate_same =
    String.equal
      (Batch.Driver.summary_signature seq.Batch.Driver.rp_summary)
      (Batch.Driver.summary_signature par.Batch.Driver.rp_summary)
  in
  let speedup =
    seq.Batch.Driver.rp_wall_seconds /. par.Batch.Driver.rp_wall_seconds
  in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "sequential:      %8.3f s\n" seq.Batch.Driver.rp_wall_seconds;
  Printf.printf "%d domains:       %8.3f s   (%.2fx, %d core%s available)\n"
    pool_domains par.Batch.Driver.rp_wall_seconds speedup cores
    (if cores = 1 then "" else "s");
  Printf.printf "per-input IR byte-identical:   %s\n"
    (if !ir_mismatches = 0 then "yes" else "NO");
  Printf.printf "per-input stats identical:     %s\n"
    (if !stat_mismatches = 0 then "yes" else "NO");
  Printf.printf "aggregated pass stats identical: %s\n"
    (if aggregate_same then "yes" else "NO");
  (* Fault isolation: a parse error and a mid-pipeline diagnostic, mixed
     into the manifest, must each fail exactly their own entry. *)
  let crash_entries =
    [
      {
        Batch.Manifest.e_name = "crash-parse";
        e_source = Batch.Manifest.Inline "void broken(float A[8][8]) {";
        e_schedule = Mlt.Pipeline.Config P.Mlt_linalg;
      };
      {
        Batch.Manifest.e_name = "crash-two-kernels";
        e_source =
          Batch.Manifest.Inline
            "void f(float A[4]) { for (int i = 0; i < 4; ++i) A[i] = 0.0; }\n\
             void g(float A[4]) { for (int i = 0; i < 4; ++i) A[i] = 1.0; }";
        e_schedule = Mlt.Pipeline.Config P.Mlt_linalg;
      };
    ]
  in
  let insert_at k x xs =
    let rec go i = function
      | rest when i = k -> x :: rest
      | [] -> [ x ]
      | y :: rest -> y :: go (i + 1) rest
    in
    go 0 xs
  in
  let faulty =
    Batch.Manifest.of_entries
      (insert_at 3 (List.hd crash_entries)
         (insert_at 7 (List.nth crash_entries 1) entries))
  in
  let frun = Batch.Driver.run ~domains:pool_domains faulty in
  let failed_names =
    List.filter_map
      (fun (r : Batch.Driver.entry_result) ->
        match r.Batch.Driver.r_status with
        | Batch.Driver.Failed _ -> Some r.Batch.Driver.r_name
        | Batch.Driver.Done -> None)
      frun.Batch.Driver.rp_results
  in
  let fault_isolated =
    List.sort compare failed_names
    = List.sort compare [ "crash-parse"; "crash-two-kernels" ]
  in
  Printf.printf
    "fault isolation: %d/%d entries failed (%s) -- %s\n"
    (Batch.Driver.failed_count frun)
    (List.length frun.Batch.Driver.rp_results)
    (String.concat ", " failed_names)
    (if fault_isolated then "isolated" else "NOT ISOLATED");
  (* Warm-cache phase: the same manifest through a fresh content-addressed
     cache (cold fill), then again through a *reopened* handle (warm).
     The warm run must serve every entry from the cache and still match
     the sequential oracle byte-for-byte — the repeat-traffic economics
     the cache exists for, measured end to end including the journal
     replay of Cache.open_. *)
  let cache_dir = Filename.temp_dir "mlt_bench_cache" "" in
  let cold =
    Batch.Driver.run ~domains:pool_domains
      ~cache:(Batch.Cache.open_ ~dir:cache_dir)
      manifest
  in
  let warm =
    Batch.Driver.run ~domains:pool_domains
      ~cache:(Batch.Cache.open_ ~dir:cache_dir)
      manifest
  in
  let warm_identical =
    List.for_all2
      (fun (s : Batch.Driver.entry_result) (w : Batch.Driver.entry_result) ->
        String.equal s.Batch.Driver.r_ir w.Batch.Driver.r_ir
        && String.equal
             (Batch.Driver.result_signature s)
             (Batch.Driver.result_signature w))
      seq.Batch.Driver.rp_results warm.Batch.Driver.rp_results
  in
  let warm_all_hits =
    warm.Batch.Driver.rp_cache_hits = Batch.Manifest.size manifest
  in
  let cache_speedup =
    cold.Batch.Driver.rp_wall_seconds /. warm.Batch.Driver.rp_wall_seconds
  in
  Printf.printf "cold cache fill: %8.3f s   (%d misses)\n"
    cold.Batch.Driver.rp_wall_seconds cold.Batch.Driver.rp_cache_misses;
  Printf.printf "warm cache:      %8.3f s   (%.1fx, %d/%d served from cache)\n"
    warm.Batch.Driver.rp_wall_seconds cache_speedup
    warm.Batch.Driver.rp_cache_hits
    (Batch.Manifest.size manifest);
  Printf.printf "warm run matches sequential oracle: %s%s\n"
    (if warm_identical then "yes" else "NO")
    (if warm_all_hits then "" else "  (WARNING: not all entries hit)");
  let rec rm_rf path =
    if (try Sys.is_directory path with Sys_error _ -> false) then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()
  in
  rm_rf cache_dir;
  let speedup_target = 2.5 in
  (* Shared/loaded CI hosts can report 4+ cores yet not deliver 4 cores
     of throughput, so core count alone cannot justify hard-failing on
     speed: the speedup is always measured and recorded in
     BENCH_batch.json, but the assertion is explicit opt-in. *)
  let assert_speedup =
    match Sys.getenv_opt "MLT_BENCH_ASSERT_SPEEDUP" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false
  in
  Support.Atomic_io.write_file ~path:"BENCH_batch.json"
    (Printf.sprintf
       "{\n  \"run_meta\": %s,\n  \"quick\": %b,\n  \"entries\": %d,\n  \"domains\": %d,\n  \
        \"cores\": %d,\n  \"seq_seconds\": %.6f,\n  \"par_seconds\": %.6f,\n  \
        \"speedup\": %.3f,\n  \"speedup_target\": %.2f,\n  \
        \"speedup_asserted\": %b,\n  \"ir_identical\": %b,\n  \
        \"stats_identical\": %b,\n  \"aggregate_identical\": %b,\n  \
        \"fault_isolated\": %b,\n  \"cache_cold_seconds\": %.6f,\n  \
        \"cache_warm_seconds\": %.6f,\n  \"cache_speedup\": %.3f,\n  \
        \"cache_warm_hits\": %d,\n  \"cache_warm_identical\": %b\n}\n"
       (Support.Run_meta.to_string ())
       !quick
       (Batch.Manifest.size manifest)
       pool_domains cores seq.Batch.Driver.rp_wall_seconds
       par.Batch.Driver.rp_wall_seconds speedup speedup_target assert_speedup
       (!ir_mismatches = 0) (!stat_mismatches = 0) aggregate_same
       fault_isolated cold.Batch.Driver.rp_wall_seconds
       warm.Batch.Driver.rp_wall_seconds cache_speedup
       warm.Batch.Driver.rp_cache_hits warm_identical);
  Printf.printf "wrote BENCH_batch.json\n";
  if !ir_mismatches > 0 || !stat_mismatches > 0 || not aggregate_same then
    Support.Diag.errorf
      "bench batch: %d-domain run diverges from the sequential oracle"
      pool_domains;
  if not fault_isolated then
    Support.Diag.errorf
      "bench batch: crashing inputs did not fail in isolation";
  if not (warm_identical && warm_all_hits) then
    Support.Diag.errorf
      "bench batch: warm-cache run diverged (%d/%d hits, identical=%b)"
      warm.Batch.Driver.rp_cache_hits
      (Batch.Manifest.size manifest)
      warm_identical;
  if assert_speedup && speedup < speedup_target then
    Support.Diag.errorf
      "bench batch: %.2fx speedup on %d domains below the %.1fx target"
      speedup pool_domains speedup_target;
  if not assert_speedup then
    Printf.printf
      "(speedup target %.1fx reported, not asserted — set \
       MLT_BENCH_ASSERT_SPEEDUP=1 to enforce; %d core%s available)\n"
      speedup_target cores
      (if cores = 1 then "" else "s")

(* ---------------- Ablations (design choices from DESIGN.md) ------------- *)

let ablation () =
  sep "Ablation 1: commutative operation matching";
  (* The paper's m_Op<AddOp>(a, m_Op<MulOp>(b, c)) is fixed-shape; our
     matchers try operand permutations. Four semantically identical ways
     of writing the MAC statement: *)
  let variants =
    [
      "C[i][j] = C[i][j] + A[i][k] * B[k][j];";
      "C[i][j] = A[i][k] * B[k][j] + C[i][j];";
      "C[i][j] = C[i][j] + B[k][j] * A[i][k];";
      "C[i][j] = B[k][j] * A[i][k] + C[i][j];";
    ]
  in
  let count commutative =
    List.length
      (List.filter
         (fun stmt ->
           let src =
             Printf.sprintf
               "void f(float A[8][8], float B[8][8], float C[8][8]) { for \
                (int i = 0; i < 8; ++i) for (int j = 0; j < 8; ++j) for \
                (int k = 0; k < 8; ++k) %s }"
               stmt
           in
           let m = Met.Emit_affine.translate src in
           let store = ref None in
           Ir.Core.walk m (fun op ->
               if Affine.Affine_ops.is_store op then store := Some op);
           let stored =
             Affine.Affine_ops.stored_value (Option.get !store)
           in
           let open Matchers.Op_match in
           let mk o = if commutative then op_commutative o else op o in
           matches
             (mk "arith.addf" [ any; mk "arith.mulf" [ any; any ] ])
             stored)
         variants)
  in
  Printf.printf "fixed-shape m_Op (as in Listing 5):   %d / 4 variants\n"
    (count false);
  Printf.printf "commutative m_Op (this reproduction): %d / 4 variants\n"
    (count true);

  sep "Ablation 2: min-bounded edge tiles vs divisible-only tiling";
  let n = 200 in
  (* 200 is not divisible by 32: min-bounds let the preferred tile size
     apply anyway; a divisible-only tiler must fall back to 25 or 40. *)
  let src = W.mm ~ni:n ~nj:n ~nk:n () in
  let machine = MM.amd_2920x in
  let flops = 2. *. float_of_int (n * n * n) in
  (* Compare in the vectorized regime (as Pluto-best would run), where
     compute no longer masks locality. *)
  let timed size =
    let m = Met.Emit_affine.translate src in
    let f = Option.get (Core.find_func m "mm") in
    Transforms.Pluto.apply
      { Transforms.Pluto.tile = size; fusion = Transforms.Loop_fuse.No_fuse;
        vectorize = true }
      f;
    flops /. (Machine.Perf.time_func machine f).Machine.Perf.seconds /. 1e9
  in
  Printf.printf "tile 32 with min bounds:   %6.2f GFLOPS\n" (timed 32);
  Printf.printf "tile 40 (divisible):       %6.2f GFLOPS\n" (timed 40);
  Printf.printf "tile 25 (divisible):       %6.2f GFLOPS\n" (timed 25);
  Printf.printf "tile 8  (divisible):       %6.2f GFLOPS\n" (timed 8);
  Printf.printf "untiled (vectorized):      %6.2f GFLOPS\n" (timed 1);

  sep "Ablation 3: TTGT raising vs tiling the contraction loops directly";
  let name, spec, sizes =
    List.hd (Workloads.Contraction_spec.paper_benchmarks ())
  in
  let csrc =
    Workloads.Contraction_spec.c_source spec ~sizes ~name:"contraction" ()
  in
  let cflops = Workloads.Contraction_spec.flops spec ~sizes in
  let direct =
    let m = Met.Emit_affine.translate csrc in
    Transforms.Loop_tile.tile_all m ~size:32;
    cflops
    /. (Machine.Perf.time_func machine
          (Option.get (Core.find_func m "contraction")))
         .Machine.Perf.seconds
    /. 1e9
  in
  let ttgt = P.gflops P.Mlt_linalg machine csrc ~flops:cflops in
  Printf.printf "%s: tile the 5-d loops directly: %6.2f GFLOPS\n" name direct;
  Printf.printf "%s: TTGT to matmul (MLT-Linalg): %6.2f GFLOPS\n" name ttgt;

  sep "Ablation 4: fusion heuristics on gesummv";
  let gsrc = W.gesummv ~n:256 () in
  let gflops_count = 4. *. (256. ** 2.) in
  List.iter
    (fun fusion ->
      let m = Met.Emit_affine.translate gsrc in
      let f = Option.get (Core.find_func m "gesummv") in
      Transforms.Pluto.apply { Transforms.Pluto.tile = 32; fusion; vectorize = false } f;
      Printf.printf "%-10s %6.2f GFLOPS\n"
        (Transforms.Loop_fuse.heuristic_to_string fusion)
        (gflops_count
        /. (Machine.Perf.time_func machine f).Machine.Perf.seconds
        /. 1e9))
    [ Transforms.Loop_fuse.No_fuse; Transforms.Loop_fuse.Smart_fuse;
      Transforms.Loop_fuse.Max_fuse ];

  sep "Ablation 5: executable BLIS schedule vs naive loops (trace model)";
  (* The sec-5.1 path is modelled analytically; Blis_schedule makes the
     same packed schedule executable IR. Trace-simulating it shows the
     locality gain the analytical model credits, at the issue width plain
     loop code gets (the remaining gap to the analytical number is the
     register blocking/unrolling a toy codegen does not perform). *)
  let n5 = 128 in
  let src5 = W.mm ~ni:n5 ~nj:n5 ~nk:n5 () in
  let flops5 = 2. *. float_of_int (n5 * n5 * n5) in
  let gf f =
    flops5 /. (Machine.Perf.time_func machine f).Machine.Perf.seconds /. 1e9
  in
  let naive =
    Option.get (Core.find_func (Met.Emit_affine.translate src5) "mm")
  in
  let blis_traced =
    let m = Met.Emit_affine.translate src5 in
    ignore (Mlt.Tactics.raise_to_affine_matmul m);
    Transforms.Blis_schedule.run
      ~blocking:{ Transforms.Blis_schedule.mc = 32; nc = 64; kc = 32 }
      m;
    Option.get (Core.find_func m "mm")
  in
  Printf.printf "naive loops (traced):        %6.2f GFLOPS\n" (gf naive);
  Printf.printf "BLIS schedule (traced):      %6.2f GFLOPS\n" (gf blis_traced);
  Printf.printf "BLIS schedule (analytical):  %6.2f GFLOPS\n"
    (flops5
    /. Machine.Blas_model.blis_codegen_gemm_seconds machine ~m:n5 ~n:n5 ~k:n5
    /. 1e9)

(* ---------------- driver ------------------------------------------------- *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let args =
    List.filter
      (fun a ->
        if a = "--quick" then (
          quick := true;
          false)
        else if String.starts_with ~prefix:"--trace=" a then (
          trace_file :=
            Some (String.sub a 8 (String.length a - 8));
          false)
        else if String.starts_with ~prefix:"--metrics=" a then (
          metrics_file :=
            Some (String.sub a 10 (String.length a - 10));
          false)
        else true)
      args
  in
  let sections =
    if args = [] || args = [ "all" ] then
      [
        "fig8"; "sec51"; "fig9"; "table2"; "overhead"; "ablation"; "interp";
        "patterns"; "scale"; "micro"; "tune"; "batch";
      ]
    else args
  in
  let run_sections () =
    List.iter
      (function
        | "fig8" -> fig8 ()
        | "sec51" -> sec51 ()
        | "fig9" -> fig9 ()
        | "table2" -> table2 ()
        | "overhead" -> overhead ()
        | "ablation" -> ablation ()
        | "interp" -> interp ()
        | "patterns" -> patterns_section ()
        | "scale" -> scale ()
        | "micro" -> micro ()
        | "tune" -> tune_section ()
        | "batch" -> batch ()
        | other -> Printf.eprintf "unknown section %S\n" other)
      sections
  in
  let with_trace f =
    match !trace_file with
    | None -> f ()
    | Some path ->
        let sink = Trace.Chrome.create () in
        Fun.protect
          ~finally:(fun () ->
            Trace.Chrome.detach sink;
            Trace.Chrome.write sink path;
            Printf.printf "wrote trace (%d events) to %s\n"
              (Trace.Chrome.count sink) path)
          f
  in
  match !metrics_file with
  | None -> with_trace run_sections
  | Some path ->
      Metrics.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Metrics.record_intern_stats ();
          Metrics.write ~path (Metrics.snapshot ());
          Printf.printf "wrote metrics to %s\n" path)
        (fun () -> with_trace run_sections)
