(* mlt-opt: the mlir-opt-style driver for Multi-Level Tactics.

   Reads mini-C (with --c or a .c extension) or textual IR, applies the
   requested passes in the canonical pipeline order, and prints the
   resulting IR. Examples:

     mlt-opt gemm.c --raise-affine-to-linalg
     mlt-opt gemm.c --raise-affine-to-affine
     mlt-opt chain.c --raise-affine-to-linalg --reorder-chains \
             --convert-linalg-to-blas
     mlt-opt kernel.mlir --tile 32 --lower-affine
     mlt-opt gemm.c --tactics my_tactics.tdl --dump-tds *)

open Cmdliner
module T = Transforms

let read_file = function
  | "-" -> In_channel.input_all In_channel.stdin
  | path -> In_channel.with_open_text path In_channel.input_all

let list_ops () =
  (* Force registration of every dialect, then dump the registry. *)
  Std_dialect.Arith.register ();
  Std_dialect.Memref_ops.register ();
  Std_dialect.Scf.register ();
  Affine.Affine_ops.register ();
  Linalg.Linalg_ops.register ();
  Blas.Blas_ops.register ();
  List.iter
    (fun name ->
      match Ir.Dialect.lookup name with
      | Some d -> Printf.printf "%-24s %s\n" name d.Ir.Dialect.od_summary
      | None -> ())
    (Ir.Dialect.registered_ops ())

let run input list_ops_flag force_c tactics_file dump_tds delinearize
    raise_scf canonicalize raise_affine raise_linalg reorder_chains to_blas
    lower_linalg lower_linalg_tiled fuse tile lower_affine dce verify_each
    output =
  if list_ops_flag then (
    list_ops ();
    Ok ())
  else
  try
    let src = read_file input in
    let is_c =
      force_c || Filename.check_suffix input ".c" || input = "-"
    in
    let m =
      if is_c then Met.Emit_affine.translate ~file:input src
      else Ir.Parser.parse_module ~file:input src
    in
    let tactic_patterns =
      match tactics_file with
      | None -> None
      | Some path ->
          let tdl_src = read_file path in
          if dump_tds then
            List.iter
              (fun tds -> print_string (Tdl.Tds.to_string tds))
              (Tdl.Frontend.lower_source ~file:path tdl_src);
          Some (Tdl.Backend.compile_tdl tdl_src)
    in
    let verify () = if verify_each then Ir.Verifier.verify m in
    if raise_scf then (
      ignore (T.Raise_scf.run m);
      verify ());
    if delinearize then (
      Ir.Core.walk m (fun op ->
          if Ir.Core.is_func op then ignore (T.Delinearize.run op));
      verify ());
    if canonicalize then (
      ignore (T.Canonicalize.run m);
      verify ());
    if raise_affine then (
      ignore (Mlt.Tactics.raise_to_affine_matmul m);
      verify ());
    if raise_linalg then (
      let pats =
        match tactic_patterns with
        | Some pats -> Mlt.Tactics.fill_pattern () :: pats
        | None -> Mlt.Tactics.all ()
      in
      ignore (Ir.Rewriter.apply_greedily m pats);
      verify ());
    if reorder_chains then (
      Ir.Core.walk m (fun op ->
          if Ir.Core.is_func op then ignore (Mlt.Raise_chain.reorder op));
      verify ());
    if to_blas then (
      ignore (Mlt.To_blas.run m);
      verify ());
    (match lower_linalg_tiled with
    | Some size ->
        T.Lower_linalg.run_tiled ~size m;
        verify ()
    | None ->
        if lower_linalg then (
          T.Lower_linalg.run m;
          verify ()));
    (match fuse with
    | Some h ->
        let heuristic =
          match h with
          | "nofuse" -> T.Loop_fuse.No_fuse
          | "smartfuse" -> T.Loop_fuse.Smart_fuse
          | "maxfuse" -> T.Loop_fuse.Max_fuse
          | other -> Support.Diag.errorf "unknown fusion heuristic %S" other
        in
        ignore (T.Loop_fuse.run heuristic m);
        verify ()
    | None -> ());
    (match tile with
    | Some size ->
        T.Loop_tile.tile_all m ~size;
        verify ()
    | None -> ());
    if lower_affine then (
      T.Lower_affine.run m;
      verify ());
    if dce then (
      ignore (T.Dce.run m);
      verify ());
    Ir.Verifier.verify m;
    let text = Ir.Printer.op_to_string m ^ "\n" in
    (match output with
    | None -> print_string text
    | Some path -> Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc text));
    Ok ()
  with
  | Support.Diag.Error (loc, msg) ->
      Error (Support.Diag.to_string loc msg)
  | Sys_error e -> Error e

let input =
  Arg.(value & pos 0 string "-" & info [] ~docv:"FILE"
         ~doc:"Input file: mini-C (.c) or textual IR (.mlir); '-' for stdin.")

let flag names doc = Arg.(value & flag & info names ~doc)

let cmd =
  let open Term in
  let term =
    const run
    $ input
    $ flag [ "list-ops" ]
        "Print every registered operation with its summary and exit."
    $ flag [ "c" ] "Force parsing the input as mini-C."
    $ Arg.(value & opt (some string) None
           & info [ "tactics" ] ~docv:"FILE.tdl"
               ~doc:"Load user-defined TDL tactics for raising (replaces \
                     the built-in tactic set).")
    $ flag [ "dump-tds" ]
        "Print the TableGen-stage TDS generated from --tactics."
    $ flag [ "delinearize" ]
        "Optimistically delinearize rank-1 buffers (recovers Darknet-style \
         linearized GEMMs)."
    $ flag [ "raise-scf-to-affine" ]
        "Raise SCF loops and memref accesses back to the affine dialect."
    $ flag [ "canonicalize" ] "Run algebraic canonicalization."
    $ flag [ "raise-affine-to-affine" ]
        "Raise GEMM loop nests to affine.matmul (sec. 5.1)."
    $ flag [ "raise-affine-to-linalg" ]
        "Raise loop nests to Linalg operations (sec. 5.2)."
    $ flag [ "reorder-chains" ]
        "Re-parenthesize matrix-multiplication chains optimally (sec. 5.3)."
    $ flag [ "convert-linalg-to-blas" ]
        "Replace Linalg ops with vendor-library calls (MLT-Blas)."
    $ flag [ "lower-linalg" ] "Lower Linalg ops to affine loops."
    $ Arg.(value & opt (some int) None
           & info [ "lower-linalg-tiled" ] ~docv:"SIZE"
               ~doc:"Lower Linalg ops to cache-tiled loops (MLT-Linalg path).")
    $ Arg.(value & opt (some string) None
           & info [ "fuse" ] ~docv:"HEURISTIC"
               ~doc:"Fuse loops: nofuse, smartfuse or maxfuse.")
    $ Arg.(value & opt (some int) None
           & info [ "tile" ] ~docv:"SIZE" ~doc:"Tile affine loop nests.")
    $ flag [ "lower-affine" ] "Lower the affine dialect to SCF + memref."
    $ flag [ "dce" ] "Dead-code (and dead-buffer) elimination."
    $ flag [ "verify-each" ] "Verify the IR after every pass."
    $ Arg.(value & opt (some string) None
           & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write output here.")
  in
  Cmd.v
    (Cmd.info "mlt-opt" ~version:"1.0"
       ~doc:"Multi-Level Tactics optimizer driver")
    Term.(term_result' term)

let () = exit (Cmd.eval cmd)
