(* The full progressive-raising ladder, bottom to top:

     SCF  ->  Affine  ->  Linalg  ->  BLAS

   starting from a Darknet-style kernel over linearized rank-1 buffers —
   the hardest case of Figure 8 — at the lowest abstraction level this IR
   has. Each rung is a raising pass from this repository:
     1. Raise_scf     : scf.for + memref accesses -> affine dialect
     2. Delinearize   : rank-1 strided subscripts -> 2-d memrefs
     3. GEMM tactic   : affine loops -> linalg.matmul
     4. To_blas       : linalg.matmul -> vendor library call

     dune exec examples/progressive_raising.exe *)

open Ir

let () =
  (* A linearized GEMM, as Darknet writes it. *)
  let src = Workloads.Polybench.darknet_gemm ~m:32 ~n:32 ~k:32 () in
  print_endline "--- 0. Darknet-style C source (linearized buffers) ---";
  print_string src;

  let m = Met.Emit_affine.translate src in
  (* Push it all the way DOWN first: the entry point the paper worries
     about, below even the affine level. *)
  Transforms.Lower_affine.run m;
  print_endline "\n--- 1. Entry at the SCF level (below Affine) ---";
  print_endline (Printer.op_to_string m);

  let reference = Met.Emit_affine.translate src in

  let raised_scf = Transforms.Raise_scf.run m in
  Printf.printf "--- 2. Raise SCF -> Affine (%d ops raised) ---\n" raised_scf;

  let delin =
    let total = ref 0 in
    Core.walk m (fun op ->
        if Core.is_func op then total := !total + Transforms.Delinearize.run op);
    !total
  in
  Printf.printf "--- 3. Delinearize (%d buffers retyped to 2-d) ---\n" delin;

  let raised = Mlt.Tactics.raise_to_linalg m in
  Printf.printf "--- 4. Raise Affine -> Linalg (%d sites) ---\n" raised;

  let converted = Mlt.To_blas.run m in
  Printf.printf "--- 5. Convert Linalg -> BLAS (%d calls) ---\n\n" converted;
  print_endline (Printer.op_to_string m);

  (* Semantics: same row-major data as the original rank-1 program. *)
  let n = 32 in
  let mk1 seed = let b = Interp.Buffer.create [ n * n ] in Interp.Buffer.randomize ~seed b; b in
  let mk2 seed = let b = Interp.Buffer.create [ n; n ] in Interp.Buffer.randomize ~seed b; b in
  let a1 = mk1 1 and b1 = mk1 2 and c1 = mk1 3 in
  let a2 = mk2 1 and b2 = mk2 2 and c2 = mk2 3 in
  Interp.Eval.run reference "darknet_gemm" [ a1; b1; c1 ];
  Interp.Eval.run m "darknet_gemm" [ a2; b2; c2 ];
  let diff =
    Interp.Buffer.max_abs_diff c1
      { c1 with Interp.Buffer.data = c2.Interp.Buffer.data }
  in
  Printf.printf "--- 6. Interpreter check (max |diff| = %g): %s ---\n" diff
    (if diff < 1e-3 then "PASS" else "FAIL")
