(* Quickstart: the paper's headline flow, end to end.

   A GEMM written as plain C loops enters the multi-level IR through MET
   at the Affine level, Multi-Level Tactics raises it to the Linalg
   dialect, the result is checked semantically equivalent with the
   interpreter, and both versions are timed on a machine model.

     dune exec examples/quickstart.exe *)

let c_source =
  {|
void gemm(float A[128][128], float B[128][128], float C[128][128]) {
  for (int i = 0; i < 128; ++i)
    for (int j = 0; j < 128; ++j) {
      C[i][j] = 0.0;
      for (int k = 0; k < 128; ++k)
        C[i][j] += A[i][k] * B[k][j];
    }
}
|}

let () =
  print_endline "--- 1. C source ---";
  print_string c_source;

  (* MET: parse the polyhedral C subset, distribute loops, emit Affine. *)
  let m = Met.Emit_affine.translate c_source in
  print_endline "\n--- 2. Affine dialect (entry via MET) ---";
  print_endline (Ir.Printer.op_to_string m);

  (* Keep an untouched copy for the equivalence check. *)
  let reference = Met.Emit_affine.translate c_source in

  (* Multi-Level Tactics: raise loop nests to Linalg operations. The
     standard tactic set is declared in TDL (Listing 8 style). *)
  print_endline "--- 3. The GEMM tactic (TDL) ---";
  print_string Tdl.Frontend.gemm_tdl;
  let raised = Mlt.Tactics.raise_to_linalg m in
  Printf.printf "\n--- 4. After -raise-affine-to-linalg (%d sites raised) ---\n"
    raised;
  print_endline (Ir.Printer.op_to_string m);

  (* The interpreter proves the rewrite preserved the function. *)
  let equal = Interp.Eval.equivalent reference m "gemm" ~seed:42 in
  Printf.printf "--- 5. Interpreter equivalence check: %s ---\n\n"
    (if equal then "PASS" else "FAIL");

  (* Performance on the machine model: the raised program converts to a
     vendor-library call (MLT-Blas) and wins big over the plain loops. *)
  let machine = Machine.Machine_model.amd_2920x in
  let flops = 2. *. (128. ** 3.) in
  let time config =
    Mlt.Pipeline.gflops config machine c_source ~flops
  in
  Printf.printf "--- 6. Simulated performance (%s) ---\n"
    machine.Machine.Machine_model.name;
  List.iter
    (fun config ->
      Printf.printf "  %-14s %8.2f GFLOPS\n"
        (Mlt.Pipeline.config_name config)
        (time config))
    [ Mlt.Pipeline.Clang_O3; Mlt.Pipeline.Pluto_default; Mlt.Pipeline.Mlt_blas ]
