examples/quickstart.mli:
