examples/custom_tactic.ml: Interp Ir Met Printf Tdl
