examples/progressive_raising.mli:
