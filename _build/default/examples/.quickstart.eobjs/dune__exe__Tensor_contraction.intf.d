examples/tensor_contraction.mli:
