examples/tensor_contraction.ml: Interp Ir List Machine Met Mlt Printf Tdl Workloads
