examples/custom_tactic.mli:
