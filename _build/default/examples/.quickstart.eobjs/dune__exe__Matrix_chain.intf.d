examples/matrix_chain.mli:
