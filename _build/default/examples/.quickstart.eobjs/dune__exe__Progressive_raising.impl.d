examples/progressive_raising.ml: Core Interp Ir Met Mlt Printer Printf Transforms Workloads
