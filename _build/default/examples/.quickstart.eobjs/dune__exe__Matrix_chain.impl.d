examples/matrix_chain.ml: Array Core Interp Ir List Machine Met Mlt Option Printer Printf Transforms Workloads
