examples/quickstart.ml: Interp Ir List Machine Met Mlt Printf Tdl
