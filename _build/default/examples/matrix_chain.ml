(* Progressive raising, level two (§5.3): a chain of matrix products
   written as C loops is raised to Linalg, the chain is detected at the
   Linalg level (through the last-writer use-def relation, Listing 9),
   and re-parenthesized with the CLRS dynamic program.

     dune exec examples/matrix_chain.exe *)

open Ir

(* The paper's §5.3 example: (A1 x A2) x A3 costs 1.152e9 scalar
   multiplications, A1 x (A2 x A3) only 2.2e8. Scaled down 4x so the
   demonstration also runs through the interpreter. *)
let dims = [ 200; 275; 300; 25 ]

let () =
  let src = Workloads.Polybench.matrix_chain dims in
  print_endline "--- 1. C source: ((A1 x A2) x A3) with explicit temps ---";
  print_string src;

  let m = Met.Emit_affine.translate src in
  let f = Option.get (Core.find_func m "chain") in
  let raised = Mlt.Tactics.raise_to_linalg f in
  Printf.printf "\n--- 2. Raised to Linalg (%d sites: fills + matmuls) ---\n"
    raised;
  print_endline (Printer.op_to_string m);

  (* Listing 9: detect the chain by walking m_Op<MatmulOp> through the
     buffer producer relation. *)
  (match Mlt.Raise_chain.detect f with
  | [ chain ] ->
      Printf.printf "--- 3. Detected a chain of %d matrices ---\n"
        (List.length chain.Mlt.Raise_chain.inputs)
  | chains -> Printf.printf "--- 3. Detected %d chains ---\n" (List.length chains));

  let darr = Array.of_list dims in
  let t_left, c_left = Mlt.Matrix_chain.left_assoc darr in
  let t_opt, c_opt = Mlt.Matrix_chain.optimal darr in
  Printf.printf "initial parenthesization %s: %.3e scalar multiplications\n"
    (Mlt.Matrix_chain.to_string t_left) c_left;
  Printf.printf "optimal parenthesization %s: %.3e scalar multiplications\n"
    (Mlt.Matrix_chain.to_string t_opt) c_opt;

  let reference = Met.Emit_affine.translate src in
  let rewritten = Mlt.Raise_chain.reorder f in
  Printf.printf "\n--- 4. After reordering (%d chain rewritten) ---\n" rewritten;
  print_endline (Printer.op_to_string m);

  let equal = Interp.Eval.equivalent reference m "chain" ~seed:7 in
  Printf.printf "--- 5. Interpreter equivalence: %s ---\n"
    (if equal then "PASS" else "FAIL");

  (* Simulated times, IP vs OP, as in Table II. *)
  let machine = Machine.Machine_model.amd_2920x in
  let time g =
    let m = Met.Emit_affine.translate src in
    let f = Option.get (Core.find_func m "chain") in
    ignore (Mlt.Tactics.raise_to_linalg f);
    g f;
    ignore (Mlt.To_blas.run f);
    Transforms.Lower_linalg.run f;
    (Machine.Perf.time_func machine f).Machine.Perf.seconds
  in
  let t_ip = time (fun _ -> ()) in
  let t_op = time (fun f -> ignore (Mlt.Raise_chain.reorder f)) in
  Printf.printf "\n--- 6. Simulated time (%s) ---\n"
    machine.Machine.Machine_model.name;
  Printf.printf "  initial order: %.6f s\n" t_ip;
  Printf.printf "  optimal order: %.6f s  (speedup %.2fx)\n" t_op (t_ip /. t_op)
