lib/linalg/linalg_ops.ml: Affine_map Array Attr Builder Core Dialect Fun Ir List Std_dialect String Support Typ
