lib/linalg/linalg_ops.mli: Affine_map Builder Core Ir
