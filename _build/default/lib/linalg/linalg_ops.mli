(** The Linalg dialect (buffer semantics): named linear-algebra operations
    raised to by Multi-Level Tactics and lowered via tiling or BLAS calls.

    Conventions (single-precision throughout, matching the evaluation):
    - [matmul A B C]: C(i,j) += A(i,k) * B(k,j)
    - [matvec A x y]: y(i) += A(i,j) * x(j)
    - [transpose ~perm A B]: B(i0..in) = A(perm applied), i.e.
      [B[idx] = A[permute idx]] with B's shape = A's shape permuted by
      [perm]: [shape_B.(d) = shape_A.(perm.(d))].
    - [reshape ~grouping A B]: B collapses (or expands, when B has higher
      rank) contiguous dimension groups of the row-major layout; a pure
      copy with reindexing.
    - [conv2d_nchw I W O]: O(n,f,h,w) += I(n,c,h+kh,w+kw) * W(f,c,kh,kw).
    - [contract ~maps ins out]: generic Einstein contraction
      out(map_out(d)) += in1(map_1(d)) * in2(map_2(d)).
    - [fill ~value C]: C = value everywhere. *)

open Ir

val register : unit -> unit

val matmul : Builder.t -> Core.value -> Core.value -> Core.value -> Core.op
val matvec : Builder.t -> Core.value -> Core.value -> Core.value -> Core.op

val transpose :
  Builder.t -> perm:int array -> Core.value -> Core.value -> Core.op

val reshape :
  Builder.t -> grouping:int list list -> Core.value -> Core.value -> Core.op

val conv2d_nchw :
  Builder.t -> Core.value -> Core.value -> Core.value -> Core.op

(** [contract b ~maps:[mA; mB; mC] a bv c]: the maps take the full
    iteration-space dims to each operand's subscripts. *)
val contract :
  Builder.t ->
  maps:Affine_map.t list ->
  Core.value ->
  Core.value ->
  Core.value ->
  Core.op

val fill : Builder.t -> value:float -> Core.value -> Core.op

val is_matmul : Core.op -> bool
val is_matvec : Core.op -> bool
val is_transpose : Core.op -> bool
val is_reshape : Core.op -> bool
val is_conv2d : Core.op -> bool
val is_contract : Core.op -> bool
val is_fill : Core.op -> bool

(** Any op of this dialect. *)
val is_linalg : Core.op -> bool

val transpose_perm : Core.op -> int array
val reshape_grouping : Core.op -> int list list
val contract_maps : Core.op -> Affine_map.t list

(** Inputs (all operands but the last) and output (last operand). *)
val ins : Core.op -> Core.value list

val out : Core.op -> Core.value

(** [reshape_check ~grouping in_shape out_shape] validates that collapsing
    [in_shape] by [grouping] yields [out_shape] (used by the verifier and
    by the TTGT builder synthesis). *)
val reshape_check :
  grouping:int list list -> int list -> int list -> bool

(** [transposed_shape perm shape]: shape of the transpose result. *)
val transposed_shape : int array -> int list -> int list
