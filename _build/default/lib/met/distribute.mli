(** Loop distribution — MET's canonicalization pass (§III of the paper):
    splitting loops so that each dependence-connected group of statements
    gets its own nest isolates the computational idioms (e.g. a GEMM
    accumulation from its initialization statement) and simplifies
    pattern recognition.

    Legality is decided with a conservative syntactic test: two statements
    may be separated iff for every array one of them writes and the other
    accesses, all subscript expressions on that array are syntactically
    identical (so every dependence between them is intra-iteration and
    forward, which distribution preserves). Statements that fail the test
    stay in the same nest. *)

(** Distribute every loop of a kernel body, recursively (innermost first). *)
val kernel : C_ast.kernel -> C_ast.kernel

(** Distribute a statement; a loop may fan out into several loops. *)
val stmt : C_ast.stmt -> C_ast.stmt list

(** Exposed for tests: may statements [a] and [b] (in this order) be placed
    in separate copies of their enclosing loop? *)
val separable : C_ast.stmt -> C_ast.stmt -> bool
