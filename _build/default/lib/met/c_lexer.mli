(** Hand-written lexer for the mini-C subset. *)

type token =
  | Ident of string
  | Int of int
  | Float of float
  | Kw_void
  | Kw_float
  | Kw_int
  | Kw_for
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Semi
  | Comma
  | Assign  (** [=] *)
  | Plus_assign
  | Minus_assign
  | Star_assign
  | Plus
  | Minus
  | Star
  | Slash
  | Lt
  | Le
  | Plus_plus
  | Eof

type t = { tok : token; loc : Support.Loc.t }

(** [tokenize ~file src] — raises {!Support.Diag.Error} on bad input. *)
val tokenize : file:string -> string -> t list

val token_to_string : token -> string
