(** Recursive-descent parser for the mini-C subset.

    Grammar (informally):
    {v
    program  := kernel*
    kernel   := "void" ident "(" params ")" "{" local* stmt* "}"
    params   := decl ("," decl)*
    decl     := "float" ident ("[" int "]")*
    local    := decl ";"
    stmt     := for | assign
    for      := "for" "(" "int" id "=" int ";" id "<" int ";" incr ")" body
    body     := stmt | "{" stmt* "}"
    assign   := ref ("=" | "+=" | "-=" | "*=") expr ";"
    ref      := ident ("[" index "]")*
    index    := affine integer expression over loop vars and literals
    expr     := float expression over refs and literals (+ - * /)
    v}

    Compound assignments desugar: [r += e] becomes [r = r + e], etc. *)

(** Parse a whole translation unit. Raises {!Support.Diag.Error}. *)
val parse_program : ?file:string -> string -> C_ast.program

(** Parse a source containing exactly one kernel. *)
val parse_kernel : ?file:string -> string -> C_ast.kernel
