(** Lowering from the mini-C AST to the Affine dialect — MET's entry into
    the multi-level IR (Figure 3, blue box, first arrow).

    Parameters become memref function arguments, local declarations become
    [memref.alloc]s, loops become [affine.for]s and every array reference
    becomes an [affine.load]/[affine.store] whose access map covers exactly
    the loop variables the subscripts mention (so Darknet-style linearized
    references produce rank-1 maps like [(d0, d1) -> (64*d0 + d1)]). *)

(** [kernel k] emits a [func.func]. Raises {!Support.Diag.Error} on
    undeclared arrays, rank mismatches or non-affine subscripts. *)
val kernel : C_ast.kernel -> Ir.Core.op

(** [program ?distribute ks] emits a [builtin.module]; when [distribute] is
    [true] (the default, matching MET) loops are distributed first. *)
val program : ?distribute:bool -> C_ast.program -> Ir.Core.op

(** [translate ?distribute ?file src]: parse + (distribute) + emit. The
    result is verified before being returned. *)
val translate : ?distribute:bool -> ?file:string -> string -> Ir.Core.op
