lib/met/c_parser.ml: C_ast C_lexer List String Support
