lib/met/distribute.ml: Array C_ast Fun Hashtbl List String
