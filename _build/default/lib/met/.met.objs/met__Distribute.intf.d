lib/met/distribute.mli: C_ast
