lib/met/c_ast.mli: Format Support
