lib/met/emit_affine.ml: Affine Affine_expr Affine_map Builder C_ast C_parser Core Distribute Hashtbl Ir List Std_dialect Support Typ Verifier
