lib/met/c_parser.mli: C_ast
