lib/met/c_lexer.ml: List Printf String Support
