lib/met/c_ast.ml: Format List String Support
