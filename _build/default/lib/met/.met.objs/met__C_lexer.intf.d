lib/met/c_lexer.mli: Support
