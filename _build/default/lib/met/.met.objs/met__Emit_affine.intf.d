lib/met/emit_affine.mli: C_ast Ir
