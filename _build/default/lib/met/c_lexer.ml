module D = Support.Diag

type token =
  | Ident of string
  | Int of int
  | Float of float
  | Kw_void
  | Kw_float
  | Kw_int
  | Kw_for
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Semi
  | Comma
  | Assign
  | Plus_assign
  | Minus_assign
  | Star_assign
  | Plus
  | Minus
  | Star
  | Slash
  | Lt
  | Le
  | Plus_plus
  | Eof

type t = { tok : token; loc : Support.Loc.t }

let keyword = function
  | "void" -> Some Kw_void
  | "float" | "double" -> Some Kw_float
  | "int" -> Some Kw_int
  | "for" -> Some Kw_for
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize ~file src =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let pos = ref 0 in
  let loc () = Support.Loc.make ~file ~line:!line ~col:!col in
  let advance () =
    (if !pos < n then
       if src.[!pos] = '\n' then (
         incr line;
         col := 1)
       else incr col);
    incr pos
  in
  let peek i = if !pos + i < n then Some src.[!pos + i] else None in
  let tokens = ref [] in
  let emit loc tok = tokens := { tok; loc } :: !tokens in
  let rec skip_ws () =
    match peek 0 with
    | Some (' ' | '\t' | '\r' | '\n') ->
        advance ();
        skip_ws ()
    | Some '/' when peek 1 = Some '/' ->
        while peek 0 <> None && peek 0 <> Some '\n' do
          advance ()
        done;
        skip_ws ()
    | Some '/' when peek 1 = Some '*' ->
        advance ();
        advance ();
        let rec close () =
          match (peek 0, peek 1) with
          | Some '*', Some '/' ->
              advance ();
              advance ()
          | Some _, _ ->
              advance ();
              close ()
          | None, _ -> D.errorf ~loc:(loc ()) "unterminated comment"
        in
        close ();
        skip_ws ()
    | _ -> ()
  in
  let lex_number start_loc =
    let start = !pos in
    while (match peek 0 with Some c -> is_digit c | None -> false) do
      advance ()
    done;
    let is_float =
      match (peek 0, peek 1) with
      | Some '.', Some c when is_digit c -> true
      | Some '.', (Some _ | None) -> true
      | _ -> false
    in
    if is_float then begin
      advance ();
      while (match peek 0 with Some c -> is_digit c | None -> false) do
        advance ()
      done;
      (match peek 0 with
      | Some 'f' -> advance ()
      | _ -> ());
      let text = String.sub src start (!pos - start) in
      let text =
        if String.length text > 0 && text.[String.length text - 1] = 'f' then
          String.sub text 0 (String.length text - 1)
        else text
      in
      emit start_loc (Float (float_of_string text))
    end
    else
      emit start_loc (Int (int_of_string (String.sub src start (!pos - start))))
  in
  let lex_ident start_loc =
    let start = !pos in
    while (match peek 0 with Some c -> is_ident_char c | None -> false) do
      advance ()
    done;
    let text = String.sub src start (!pos - start) in
    emit start_loc (match keyword text with Some kw -> kw | None -> Ident text)
  in
  let rec go () =
    skip_ws ();
    let l = loc () in
    match peek 0 with
    | None -> emit l Eof
    | Some c when is_digit c ->
        lex_number l;
        go ()
    | Some c when is_ident_start c ->
        lex_ident l;
        go ()
    | Some c ->
        let two tok =
          advance ();
          advance ();
          emit l tok
        in
        let one tok =
          advance ();
          emit l tok
        in
        (match (c, peek 1) with
        | '+', Some '+' -> two Plus_plus
        | '+', Some '=' -> two Plus_assign
        | '-', Some '=' -> two Minus_assign
        | '*', Some '=' -> two Star_assign
        | '<', Some '=' -> two Le
        | '(', _ -> one Lparen
        | ')', _ -> one Rparen
        | '{', _ -> one Lbrace
        | '}', _ -> one Rbrace
        | '[', _ -> one Lbracket
        | ']', _ -> one Rbracket
        | ';', _ -> one Semi
        | ',', _ -> one Comma
        | '=', _ -> one Assign
        | '+', _ -> one Plus
        | '-', _ -> one Minus
        | '*', _ -> one Star
        | '/', _ -> one Slash
        | '<', _ -> one Lt
        | _ -> D.errorf ~loc:l "unexpected character %C" c);
        go ()
  in
  go ();
  List.rev !tokens

let token_to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int i -> Printf.sprintf "integer %d" i
  | Float f -> Printf.sprintf "float %g" f
  | Kw_void -> "'void'"
  | Kw_float -> "'float'"
  | Kw_int -> "'int'"
  | Kw_for -> "'for'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Semi -> "';'"
  | Comma -> "','"
  | Assign -> "'='"
  | Plus_assign -> "'+='"
  | Minus_assign -> "'-='"
  | Star_assign -> "'*='"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Star -> "'*'"
  | Slash -> "'/'"
  | Lt -> "'<'"
  | Le -> "'<='"
  | Plus_plus -> "'++'"
  | Eof -> "end of input"
