lib/std_dialect/scf.mli: Ir
