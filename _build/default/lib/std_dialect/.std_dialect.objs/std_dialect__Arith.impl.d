lib/std_dialect/arith.ml: Array Attr Builder Core Dialect Ir List String Support Typ
