lib/std_dialect/memref_ops.mli: Ir
