lib/std_dialect/scf.ml: Array Builder Core Dialect Ir List String Support Typ
