lib/std_dialect/arith.mli: Ir
