lib/std_dialect/memref_ops.ml: Builder Core Dialect Ir List String Support Typ
