(** The [arith] dialect: scalar constants and arithmetic.

    The paper's Listing 1 uses the then-current [std.mulf]/[std.addf]
    spelling; we use the modern [arith.*] names. *)

(** Idempotently register the dialect's op definitions. *)
val register : unit -> unit

(** {2 Builders} *)

val constant_float : Ir.Builder.t -> ?typ:Ir.Typ.t -> float -> Ir.Core.value
val constant_int : Ir.Builder.t -> ?typ:Ir.Typ.t -> int -> Ir.Core.value
val constant_index : Ir.Builder.t -> int -> Ir.Core.value

val addf : Ir.Builder.t -> Ir.Core.value -> Ir.Core.value -> Ir.Core.value
val subf : Ir.Builder.t -> Ir.Core.value -> Ir.Core.value -> Ir.Core.value
val mulf : Ir.Builder.t -> Ir.Core.value -> Ir.Core.value -> Ir.Core.value
val divf : Ir.Builder.t -> Ir.Core.value -> Ir.Core.value -> Ir.Core.value
val addi : Ir.Builder.t -> Ir.Core.value -> Ir.Core.value -> Ir.Core.value
val subi : Ir.Builder.t -> Ir.Core.value -> Ir.Core.value -> Ir.Core.value
val muli : Ir.Builder.t -> Ir.Core.value -> Ir.Core.value -> Ir.Core.value

(** Floor division and (non-negative) remainder, used when lowering
    affine access maps with [floordiv]/[mod] to SCF-level arithmetic. *)
val floordivsi :
  Ir.Builder.t -> Ir.Core.value -> Ir.Core.value -> Ir.Core.value

val remsi : Ir.Builder.t -> Ir.Core.value -> Ir.Core.value -> Ir.Core.value

(** {2 Recognizers} *)

val is_constant : Ir.Core.op -> bool

(** Constant float value, if the op is a float [arith.constant]. *)
val constant_float_value : Ir.Core.op -> float option

val constant_int_value : Ir.Core.op -> int option

(** Names of binary float ops, e.g. for flop counting: ["arith.addf"; ...]. *)
val float_binops : string list
