(** The [memref] dialect subset: buffer allocation and deallocation. *)

val register : unit -> unit

(** [alloc b typ] — [typ] must be a fully static memref type. *)
val alloc : Ir.Builder.t -> ?hint:string -> Ir.Typ.t -> Ir.Core.value

val dealloc : Ir.Builder.t -> Ir.Core.value -> unit

val is_alloc : Ir.Core.op -> bool

(** [load b memref indices]: a plain (non-affine) indexed load, produced
    when lowering the affine dialect to SCF. Indices are index-typed SSA
    values, one per memref dimension. *)
val load : Ir.Builder.t -> Ir.Core.value -> Ir.Core.value list -> Ir.Core.value

val store :
  Ir.Builder.t -> Ir.Core.value -> Ir.Core.value -> Ir.Core.value list ->
  Ir.Core.op
