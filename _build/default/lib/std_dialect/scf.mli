(** The [scf] dialect subset: structured [for] loops over index values.

    The affine dialect lowers into [scf] during progressive lowering
    (Figure 2 of the paper); Multi-Level Tactics can also lift from SCF. *)

val register : unit -> unit

(** [for_ b ~lb ~ub ~step body] builds an [scf.for] whose bounds and step
    are SSA index values; [body] receives a builder positioned in the loop
    body and the induction variable. An [scf.yield] terminator is added. *)
val for_ :
  Ir.Builder.t ->
  ?hint:string ->
  lb:Ir.Core.value ->
  ub:Ir.Core.value ->
  step:Ir.Core.value ->
  (Ir.Builder.t -> Ir.Core.value -> unit) ->
  Ir.Core.op

val is_for : Ir.Core.op -> bool
val for_iv : Ir.Core.op -> Ir.Core.value
val for_body : Ir.Core.op -> Ir.Core.block
