(** Optimistic delinearization of rank-1 buffers — the pass the paper
    names as the fix for the missed Darknet callsites of Figure 8
    ("A delinearization pass in MLIR, as done in the LLVM polyhedral
    optimizer, can solve this issue", citing Grosser et al., ICS'15).

    For a rank-1 memref accessed only through subscripts of the shape
    [s*high + low] with [0 <= low < s] provably from the loop bounds, the
    buffer is retyped to [memref<(size/s) x s>] and every access map is
    split into the two-dimensional form — after which the ordinary 2-d
    GEMM tactic matches. Buffers whose accesses do not validate are left
    untouched (the analysis is optimistic but the rewrite is guarded). *)

open Ir

(** [run func] — returns the number of buffers delinearized. Callers of
    the function must pass correspondingly reshaped buffers afterwards
    (row-major data is unchanged). *)
val run : Core.op -> int

val pass : Pass.t
