open Ir

type config = { tile : int; fusion : Loop_fuse.heuristic; vectorize : bool }

let default_config =
  { tile = 32; fusion = Loop_fuse.Smart_fuse; vectorize = false }

let config_to_string c =
  Printf.sprintf "tile=%d,%s%s" c.tile
    (Loop_fuse.heuristic_to_string c.fusion)
    (if c.vectorize then ",vec" else "")

let apply config root =
  ignore (Loop_fuse.run config.fusion root);
  if config.vectorize then begin
    ignore (Interchange.vectorize_func root);
    (* Interchange of reduction loops assumes reassociation; mark the
       code as compiled with fast-math so the machine model may also
       vectorize reductions (multiple accumulators). *)
    Core.walk root (fun op ->
        if Core.is_func op then
          Core.set_attr op "fast_math" (Attr.Bool true))
  end;
  if config.tile > 1 then Loop_tile.tile_all root ~size:config.tile

let sweep_configs ~max_trip =
  let rec sizes acc t =
    if t > max 8 (max_trip / 4) then List.rev acc else sizes (t :: acc) (t * 2)
  in
  (* tile = 1 keeps the loops untiled (fusion/interchange only). *)
  let tiles = 1 :: sizes [] 4 in
  default_config
  :: List.concat_map
       (fun vectorize ->
         List.concat_map
           (fun fusion ->
             List.map (fun tile -> { tile; fusion; vectorize }) tiles)
           [ Loop_fuse.No_fuse; Loop_fuse.Smart_fuse; Loop_fuse.Max_fuse ])
       [ false; true ]

let pass config =
  Pass.make ~name:("pluto-" ^ config_to_string config) (fun (root : Core.op) ->
      apply config root)
