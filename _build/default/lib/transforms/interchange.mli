(** Loop interchange for vectorization: rotate a unit-stride loop to the
    innermost position of a perfect nest, the transformation Pluto's
    autotuned configurations apply to expose vectorizable inner loops
    (§5.2 observes it on abc-bda-dc).

    Legality is established syntactically for the nests this reproduction
    manipulates: the nest body must be a single {e reduction} statement
    [X[s] = X[s] + f(reads of other arrays)] (any iteration order yields
    the same sum up to floating-point reassociation, which Pluto also
    assumes) or a {e copy/init} statement writing [X] without reading it
    through a different subscript. Anything else is left untouched. *)

open Ir

(** [vectorize_func f] rotates eligible nests so a stride-{0,1} loop is
    innermost; returns the number of nests changed. Apply before tiling. *)
val vectorize_func : Core.op -> int

(** Exposed for tests: is this single-statement nest body a permutable
    reduction/copy? *)
val permutable_body : Core.block -> bool

val pass : Pass.t
