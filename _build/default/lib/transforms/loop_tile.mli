(** Rectangular loop tiling (strip-mine + interchange) over perfect affine
    nests with constant zero-based unit-step bounds. Edge tiles use
    multi-expression [min] upper bounds, so sizes need not divide trip
    counts. The substrate of both the Pluto substitute and the MLT-Linalg
    tiled lowering path. *)

open Ir

(** [tile_nest loops ~sizes] rewrites the nest in place (the new loops
    replace the old outermost loop in its block). [sizes] pairs with
    [loops] outermost-first; a size [<= 1] (or a size larger or equal to
    the trip count) leaves that loop point-only (no tile loop emitted).
    Raises {!Support.Diag.Error} on non-constant bounds. *)
val tile_nest : Core.op list -> sizes:int list -> unit

(** [tile_all root ~size] tiles every maximal perfect nest under [root]
    uniformly with [size] in each tileable dimension. Nests of depth 1
    are left untouched. *)
val tile_all : Core.op -> size:int -> unit

val pass : size:int -> Pass.t
