(** Progressive lowering from the affine dialect to SCF + arith + memref —
    the next step down the pipeline of Figure 2 (Affine → SCF → ... →
    codegen). Bounds become SSA index values, access maps expand into
    explicit index arithmetic ([muli]/[addi]/[floordivsi]/[remsi]) and
    accesses become plain [memref.load]/[memref.store]. *)

open Ir

(** [run root] — raises {!Support.Diag.Error} on [affine.for] with
    non-constant multi-expression bounds (run tiling-free or fully
    constant-bounded IR through it; min/max bounds would need [scf.if]
    or index min/max ops, which this subset does not model). *)
val run : Core.op -> unit

val pass : Pass.t
