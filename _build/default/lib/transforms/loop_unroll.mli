(** Loop unrolling by a constant factor, with a remainder loop for
    non-divisible trip counts — the classic low-level transformation a
    code generator applies below tiling (MLIR's
    [affine-loop-unroll]). *)

open Ir

(** [unroll_loop loop ~factor] rewrites one constant-bound unit-step
    [affine.for] in place (a main loop stepping by [factor] with the body
    replicated, plus a remainder loop). No-op (returns [false]) when
    [factor < 2], the bounds are not constant, the step is not 1, or the
    trip count is below the factor. *)
val unroll_loop : Core.op -> factor:int -> bool

(** [unroll_innermost root ~factor] unrolls every innermost loop under
    [root]; returns the number of loops unrolled. *)
val unroll_innermost : Core.op -> factor:int -> int

val pass : factor:int -> Pass.t
