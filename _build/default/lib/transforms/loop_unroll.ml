open Ir
module A = Affine.Affine_ops
module E = Affine_expr

(* Emit one replica of [body_ops] at [b], with the old induction variable
   mapped to [iv + offset]. *)
let emit_replica b ~old_iv ~new_iv ~offset body_ops =
  let iv_value =
    if offset = 0 then new_iv
    else
      A.apply b
        (Affine_map.make ~n_dims:1 [ E.add (E.dim 0) (E.const offset) ])
        [ new_iv ]
  in
  let clones = Core.clone_ops body_ops in
  List.iter
    (fun op ->
      ignore (Builder.insert b op);
      Core.replace_uses op ~old_v:old_iv ~new_v:iv_value)
    clones

let unroll_loop loop ~factor =
  if factor < 2 || not (A.is_for loop) then false
  else
    match (A.for_const_bounds loop, A.for_step loop) with
    | Some (lb, ub), 1 when ub - lb >= factor ->
        let trip = ub - lb in
        let main_ub = lb + (trip / factor * factor) in
        let old_iv = A.for_iv loop in
        let body_ops = Affine.Loops.body_ops loop in
        let b = Builder.before loop in
        let hint = Option.value ~default:"i" old_iv.Core.v_hint in
        ignore
          (A.for_const b ~hint ~lb ~ub:main_ub ~step:factor (fun b iv ->
               for c = 0 to factor - 1 do
                 emit_replica b ~old_iv ~new_iv:iv ~offset:c body_ops
               done));
        if main_ub < ub then
          ignore
            (A.for_const b ~hint ~lb:main_ub ~ub (fun b iv ->
                 emit_replica b ~old_iv ~new_iv:iv ~offset:0 body_ops));
        Core.erase_op loop;
        true
    | _ -> false

let unroll_innermost root ~factor =
  let innermost =
    List.filter
      (fun loop ->
        not (List.exists A.is_for (Affine.Loops.body_ops loop)))
      (Affine.Loops.all_loops root)
  in
  List.length (List.filter (fun l -> unroll_loop l ~factor) innermost)

let pass ~factor =
  Pass.make ~name:(Printf.sprintf "unroll-%d" factor) (fun root ->
      ignore (unroll_innermost root ~factor))
