(** The Pluto substitute: source-to-source polyhedral-style optimization
    as a combination of loop fusion (by heuristic) followed by rectangular
    tiling — the transformation space the paper's Pluto baseline explores.

    [Pluto-default] is tile size 32 with the [smartfuse] heuristic;
    [Pluto-best] sweeps tile sizes and fusion heuristics and keeps the
    best-scoring variant (the paper sweeps >3000 combinations over days of
    autotuning; our sweep is a small grid scored on the machine model,
    which preserves the "best of the transformation space" role). *)

open Ir

type config = { tile : int; fusion : Loop_fuse.heuristic; vectorize : bool }

val default_config : config

val config_to_string : config -> string

(** [apply config func] transforms in place: fusion, then (optionally)
    vectorizing interchange, then tiling. *)
val apply : config -> Core.op -> unit

(** The sweep grid for Pluto-best: tile sizes from 4 up to roughly a
    quarter of [max_trip], times the three fusion heuristics, times
    interchange on/off. *)
val sweep_configs : max_trip:int -> config list

val pass : config -> Pass.t
