open Ir
module A = Affine.Affine_ops
module E = Affine_expr

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* The range of an operand value used as a map dimension: [0, extent) for
   constant-bound unit-step loop induction variables, unknown otherwise. *)
let extent_of (v : Core.value) =
  match v.Core.v_def with
  | Core.Def_block_arg (block, 0) -> (
      match Core.block_parent_op block with
      | Some loop when A.is_for loop && A.for_step loop = 1 -> (
          match A.for_const_bounds loop with
          | Some (0, ub) -> Some ub
          | _ -> None)
      | _ -> None)
  | _ -> None

type linear_access = {
  la_op : Core.op;
  la_terms : (Core.value * int * int) list;  (** (iv, coeff, extent) *)
  la_const : int;
}

let linear_access_of op =
  let map = A.access_map op in
  let operands = Array.of_list (A.access_indices op) in
  match map.Affine_map.exprs with
  | [ e ] -> (
      match E.linearize e with
      | Some { E.dim_coeffs; sym_coeffs = []; constant } -> (
          let terms =
            List.filter_map
              (fun (d, k) ->
                if k <= 0 then None
                else
                  match extent_of operands.(d) with
                  | Some ext -> Some (operands.(d), k, ext)
                  | None -> None)
              dim_coeffs
          in
          if List.length terms = List.length dim_coeffs && constant >= 0 then
            Some { la_op = op; la_terms = terms; la_const = constant }
          else None)
      | _ -> None)
  | _ -> None

(* Split an access by stride [s]: Some (high terms, low terms) with the
   low part provably in [0, s). *)
let split_by s la =
  let high, low = List.partition (fun (_, k, _) -> k mod s = 0) la.la_terms in
  let low_max =
    List.fold_left (fun acc (_, k, ext) -> acc + (k * (ext - 1))) la.la_const
      low
  in
  if low_max < s then Some (high, low) else None

let rewrite_access s la =
  let op = la.la_op in
  let operands = Array.of_list (A.access_indices op) in
  let dim_of (v : Core.value) =
    let rec find i =
      if i >= Array.length operands then assert false
      else if Core.value_equal operands.(i) v then i
      else find (i + 1)
    in
    find 0
  in
  match split_by s la with
  | None -> assert false
  | Some (high, low) ->
      let sum terms const =
        List.fold_left
          (fun acc (v, k, _) -> E.add acc (E.mul (E.const k) (E.dim (dim_of v))))
          (E.const const) terms
      in
      let high_expr =
        sum (List.map (fun (v, k, e) -> (v, k / s, e)) high) 0
      in
      let low_expr = sum low la.la_const in
      let map =
        Affine_map.make ~n_dims:(Array.length operands)
          [ high_expr; low_expr ]
      in
      Core.set_attr op "map" (Attr.Map map)

let try_delinearize func (buf : Core.value) =
  match buf.Core.v_typ with
  | Typ.Mem_ref ([ Typ.Static size ], elem) -> (
      let accesses =
        let acc = ref [] in
        Core.walk func (fun op ->
            if
              (A.is_load op || A.is_store op)
              && Core.value_equal (A.access_memref op) buf
            then acc := op :: !acc);
        List.rev !acc
      in
      if accesses = [] then false
      else
        match
          List.fold_left
            (fun acc op ->
              match (acc, linear_access_of op) with
              | Some las, Some la -> Some (la :: las)
              | _ -> None)
            (Some []) accesses
        with
        | None -> false
        | Some las ->
            (* Candidate stride: gcd of all coefficients > 1. *)
            let coeffs =
              List.concat_map
                (fun la ->
                  List.filter_map
                    (fun (_, k, _) -> if k > 1 then Some k else None)
                    la.la_terms)
                las
            in
            (match coeffs with
            | [] -> false
            | c :: rest ->
                let s = List.fold_left gcd c rest in
                s > 1 && size mod s = 0
                && List.for_all (fun la -> split_by s la <> None) las
                && begin
                     (* High part must stay within size/s. *)
                     List.for_all
                       (fun la ->
                         match split_by s la with
                         | Some (high, _) ->
                             let high_max =
                               List.fold_left
                                 (fun acc (_, k, ext) ->
                                   acc + (k / s * (ext - 1)))
                                 0 high
                             in
                             high_max < size / s
                         | None -> false)
                       las
                   end
                && begin
                     buf.Core.v_typ <- Typ.memref [ size / s; s ] elem;
                     List.iter (rewrite_access s) las;
                     true
                   end))
  | _ -> false

let refresh_signature func =
  if Core.is_func func then begin
    let args = Core.func_args func in
    Core.set_attr func "function_type"
      (Attr.Type (Typ.Fun (List.map (fun (v : Core.value) -> v.Core.v_typ) args, [])))
  end

let run func =
  let buffers =
    Core.func_args func
    @ (let acc = ref [] in
       Core.walk func (fun op ->
           if Std_dialect.Memref_ops.is_alloc op then
             acc := Core.result op 0 :: !acc);
       List.rev !acc)
  in
  let n =
    List.fold_left
      (fun n buf -> if try_delinearize func buf then n + 1 else n)
      0 buffers
  in
  if n > 0 then refresh_signature func;
  n

let pass =
  Pass.make ~name:"delinearize" (fun root ->
      Core.walk root (fun op -> if Core.is_func op then ignore (run op)))
