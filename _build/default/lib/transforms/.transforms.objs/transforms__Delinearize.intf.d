lib/transforms/delinearize.mli: Core Ir Pass
