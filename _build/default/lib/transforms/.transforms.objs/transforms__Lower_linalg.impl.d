lib/transforms/lower_linalg.ml: Affine Affine_expr Affine_map Array Attr Core Ir Linalg List Loop_tile Pass Rewriter Std_dialect Support Typ
