lib/transforms/blis_schedule.mli: Core Ir Pass
