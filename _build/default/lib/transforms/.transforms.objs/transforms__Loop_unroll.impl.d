lib/transforms/loop_unroll.ml: Affine Affine_expr Affine_map Builder Core Ir List Option Pass Printf
