lib/transforms/loop_tile.mli: Core Ir Pass
