lib/transforms/lower_affine.ml: Affine Affine_expr Affine_map Array Attr Builder Core Ir List Option Pass Rewriter Std_dialect String Support
