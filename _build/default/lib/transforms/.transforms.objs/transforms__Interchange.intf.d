lib/transforms/interchange.mli: Core Ir Pass
