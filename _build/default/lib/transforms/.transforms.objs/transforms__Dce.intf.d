lib/transforms/dce.mli: Core Ir Pass
