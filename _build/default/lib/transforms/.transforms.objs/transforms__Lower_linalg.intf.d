lib/transforms/lower_linalg.mli: Ir
