lib/transforms/blis_schedule.ml: Affine Affine_expr Affine_map Core Ir Pass Rewriter Std_dialect Support Typ
