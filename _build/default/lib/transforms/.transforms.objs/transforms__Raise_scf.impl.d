lib/transforms/raise_scf.ml: Affine Affine_expr Affine_map Array Builder Core Dce Ir List Option Pass Rewriter Std_dialect String
