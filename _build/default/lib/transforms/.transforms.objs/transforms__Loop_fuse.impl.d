lib/transforms/loop_fuse.ml: Affine Affine_map Array Core Hashtbl Ir List Pass String
