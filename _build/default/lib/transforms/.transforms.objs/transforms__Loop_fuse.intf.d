lib/transforms/loop_fuse.mli: Core Ir Pass
