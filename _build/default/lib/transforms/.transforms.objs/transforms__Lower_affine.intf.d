lib/transforms/lower_affine.mli: Core Ir Pass
