lib/transforms/dce.ml: Affine Array Core Ir List Pass Std_dialect
