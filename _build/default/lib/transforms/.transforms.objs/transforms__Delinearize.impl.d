lib/transforms/delinearize.ml: Affine Affine_expr Affine_map Array Attr Core Ir List Pass Std_dialect Typ
