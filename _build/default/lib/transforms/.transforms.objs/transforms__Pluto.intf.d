lib/transforms/pluto.mli: Core Ir Loop_fuse Pass
