lib/transforms/raise_scf.mli: Core Ir Pass
