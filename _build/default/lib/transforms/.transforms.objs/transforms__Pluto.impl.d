lib/transforms/pluto.ml: Attr Core Interchange Ir List Loop_fuse Loop_tile Pass Printf
