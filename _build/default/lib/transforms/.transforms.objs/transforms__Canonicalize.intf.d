lib/transforms/canonicalize.mli: Core Ir Pass Rewriter
