lib/transforms/canonicalize.ml: Core Dce Ir Pass Rewriter Std_dialect
