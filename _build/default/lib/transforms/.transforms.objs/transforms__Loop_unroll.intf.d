lib/transforms/loop_unroll.mli: Core Ir Pass
