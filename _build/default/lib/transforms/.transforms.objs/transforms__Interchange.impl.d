lib/transforms/interchange.ml: Affine Affine_map Array Builder Core Ir List Option Pass Std_dialect String
