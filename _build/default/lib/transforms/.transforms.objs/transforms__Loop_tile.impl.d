lib/transforms/loop_tile.ml: Affine Affine_expr Affine_map Array Builder Core Ir List Pass Printf Support
