(** Dead-code elimination, including dead-buffer elimination: a locally
    allocated buffer whose value is never read can be removed along with
    the operations that only write it (matrix-chain reordering leaves such
    buffers behind). Conservative: function arguments are always live. *)

open Ir

(** Returns the number of erased operations. *)
val run : Core.op -> int

val pass : Pass.t
