(** Loop fusion with the three Pluto heuristics (§V-B): [nofuse],
    [smartfuse] (fuse when loops share data, balancing locality and
    parallelism) and [maxfuse] (fuse whenever legal).

    Legality uses the same conservative syntactic test as MET's loop
    distribution, transposed: two adjacent loops with identical bounds
    may fuse iff every array written by one and accessed by the other is
    accessed with the same subscript pattern (map and induction-variable
    positions), so all cross-loop dependences are intra-iteration. *)

open Ir

type heuristic = No_fuse | Smart_fuse | Max_fuse

val heuristic_to_string : heuristic -> string

(** [run h root] repeatedly fuses adjacent eligible loops (recursively,
    fused bodies may expose further inner fusion). Returns the number of
    loop pairs fused. *)
val run : heuristic -> Core.op -> int

val pass : heuristic -> Pass.t
