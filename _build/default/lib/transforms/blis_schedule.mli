(** Executable lowering of [affine.matmul] through the OpenBLAS/BLIS
    schedule (§5.1's target, after Bondhugula's "High performance code
    generation in MLIR: an early case study with GEMM"):

    {v
    for jc step NC:                    // N-partition into L3-sized panels
      for pc step KC:                  // K-partition into L2-sized panels
        pack B[pc.., jc..] -> Bp       // contiguous KC x NC panel
        for ic step MC:                // M-partition into L1-sized blocks
          pack A[ic.., pc..] -> Ap     // contiguous MC x KC block
          for i, j:                    // macro kernel over the block
            for p:                     // micro loop, reads packed panels
              C[i][j] += Ap[i-ic][p-pc] * Bp[p-pc][j-jc]
    v}

    The packed copies give the micro kernel unit-stride, cache-resident
    operands — the structural essence of the BLIS design. Edge tiles use
    min-bounded loops, so arbitrary sizes work.

    The §5.1 *performance* path models this schedule analytically
    ({!Machine.Blas_model.blis_codegen_gemm_seconds}); this module makes
    the same schedule executable IR, used for semantic validation and for
    the trace-simulation ablation. *)

open Ir

(** Block sizes; defaults approximate BLIS on the modelled machines. *)
type blocking = { mc : int; nc : int; kc : int }

val default_blocking : blocking

(** Lower every [affine.matmul] under [root] to the packed schedule. *)
val run : ?blocking:blocking -> Core.op -> unit

val pass : Pass.t
