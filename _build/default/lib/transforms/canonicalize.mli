(** Canonicalization patterns: algebraic identities ([x*1 -> x],
    [x+0 -> x], [x*0 -> 0]) and scalar constant folding, as MLIR's
    canonicalizer would run between dialect conversions. Raising benefits:
    a GEMM written with an explicit [alpha = 1.0] factor canonicalizes to
    the bare accumulation the tactic matches. *)

open Ir

val patterns : unit -> Rewriter.pattern list

(** Returns the number of pattern applications. *)
val run : Core.op -> int

val pass : Pass.t
