open Ir
module Arith = Std_dialect.Arith

let const_val (v : Core.value) =
  match Core.defining_op v with
  | Some op -> Arith.constant_float_value op
  | None -> None

let fold_identities (ctx : Rewriter.ctx) (op : Core.op) =
  let replace_with v =
    Rewriter.replace_op ctx op [ v ];
    true
  in
  let x () = Core.operand op 0 and y () = Core.operand op 1 in
  match op.o_name with
  | "arith.mulf" -> (
      match (const_val (x ()), const_val (y ())) with
      | Some a, Some b ->
          let c = Arith.constant_float ctx.builder (a *. b) in
          replace_with c
      | Some 1.0, None -> replace_with (y ())
      | None, Some 1.0 -> replace_with (x ())
      | Some 0.0, None | None, Some 0.0 ->
          replace_with (Arith.constant_float ctx.builder 0.0)
      | _ -> false)
  | "arith.addf" -> (
      match (const_val (x ()), const_val (y ())) with
      | Some a, Some b ->
          replace_with (Arith.constant_float ctx.builder (a +. b))
      | Some 0.0, None -> replace_with (y ())
      | None, Some 0.0 -> replace_with (x ())
      | _ -> false)
  | "arith.subf" -> (
      match (const_val (x ()), const_val (y ())) with
      | Some a, Some b ->
          replace_with (Arith.constant_float ctx.builder (a -. b))
      | None, Some 0.0 -> replace_with (x ())
      | _ -> false)
  | "arith.divf" -> (
      match const_val (y ()) with
      | Some 1.0 -> replace_with (x ())
      | _ -> false)
  | _ -> false

let patterns () =
  [ Rewriter.pattern ~name:"fold-float-identities" fold_identities ]

let run root =
  let n = Rewriter.apply_greedily root (patterns ()) in
  (* Folding orphans constants; sweep them. *)
  ignore (Dce.run root);
  n

let pass = Pass.make ~name:"canonicalize" (fun root -> ignore (run root))
