open Ir
module A = Affine.Affine_ops

type t =
  | For of (Core.op -> bool) option * t
  | Stmts of t list
  | Body of (Core.block -> bool)
  | Any

let for_ ?filter child = For (filter, child)
let stmts children = Stmts children
let body f = Body f
let any = Any

let rec perfect ~depth ~body_pred =
  if depth <= 0 then Body body_pred
  else For (None, perfect ~depth:(depth - 1) ~body_pred)

let perfect ~depth body_pred = perfect ~depth ~body_pred

let block_of_op op =
  (* The single body block of a region-carrying op. *)
  Core.single_block op 0

let non_terminator_ops (b : Core.block) =
  List.filter (fun o -> not (Dialect.is_terminator o)) (Core.ops_of_block b)

let rec matches t (op : Core.op) =
  match t with
  | Any -> true
  | For (filter, child) ->
      A.is_for op
      && (match filter with Some f -> f op | None -> true)
      && matches_in_block child (block_of_op op)
  | Stmts _ | Body _ ->
      (* These describe block contents, not a single op. *)
      false

and matches_in_block t (b : Core.block) =
  match t with
  | Any -> true
  | Body f ->
      (* Loop-free body required. *)
      List.for_all (fun o -> not (A.is_for o)) (non_terminator_ops b) && f b
  | For _ -> (
      match non_terminator_ops b with
      | [ only ] -> matches t only
      | _ -> false)
  | Stmts children ->
      let ops = non_terminator_ops b in
      List.length ops = List.length children
      && List.for_all2 matches children ops

let matched_nest ~depth op =
  if not (A.is_for op) then None
  else
    let nest = Affine.Loops.perfect_nest op in
    if List.length nest = depth then Some nest else None
