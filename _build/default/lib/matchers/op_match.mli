(** Operation matchers ([m_Op]): verify the types of arithmetic operations
    along use-def chains, with value capture ([m_Capt]) for later
    inspection (§III-C).

    A matcher is applied to a {e value} and inspects its defining
    operation. The defining relation is pluggable: the default is SSA
    [Core.defining_op], while the matrix-chain detection at the Linalg
    level (Listing 9) plugs in a last-writer relation over buffers. *)

open Ir

type t

(** [op name operands] — value defined by [name] whose operands match. *)
val op : string -> t list -> t

(** Like {!op}, but if the operation is registered commutative also tries
    operand permutations. *)
val op_commutative : string -> t list -> t

(** [capture cell inner]: on a successful overall match, the matched value
    is stored in [cell]. (Captures are written during the search; read
    them only after [matches] returned [true].) *)
val capture : Core.value option ref -> t -> t

(** [m_Capt] shorthand: capture anything. *)
val capt : Core.value option ref -> t

val any : t

(** [value v] matches exactly the given value. *)
val value : Core.value -> t

(** [pred f] matches any value satisfying the predicate. *)
val pred : (Core.value -> bool) -> t

(** [matches ?def t v] — [def] overrides the defining-op relation. *)
val matches : ?def:(Core.value -> Core.op option) -> t -> Core.value -> bool
