open Ir

type t =
  | Any
  | Value of Core.value
  | Pred of (Core.value -> bool)
  | Capture of Core.value option ref * t
  | Op of { name : string; operands : t list; commute : bool }

let op name operands = Op { name; operands; commute = false }
let op_commutative name operands = Op { name; operands; commute = true }
let capture cell inner = Capture (cell, inner)
let capt cell = Capture (cell, Any)
let any = Any
let value v = Value v
let pred f = Pred f

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y != x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let matches ?(def = Core.defining_op) t v =
  let rec go t (v : Core.value) =
    match t with
    | Any -> true
    | Value v' -> Core.value_equal v v'
    | Pred f -> f v
    | Capture (cell, inner) ->
        if go inner v then (
          cell := Some v;
          true)
        else false
    | Op { name; operands; commute } -> (
        match def v with
        | Some op when String.equal op.Core.o_name name ->
            let actual = Array.to_list op.o_operands in
            if List.length actual <> List.length operands then false
            else if not commute then List.for_all2 go operands actual
            else
              List.exists
                (fun perm -> List.for_all2 go operands perm)
                (permutations actual)
        | _ -> false)
  in
  go t v
