lib/matchers/op_match.ml: Array Core Ir List String
