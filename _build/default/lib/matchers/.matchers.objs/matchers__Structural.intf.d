lib/matchers/structural.mli: Core Ir
