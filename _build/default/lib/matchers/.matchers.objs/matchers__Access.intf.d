lib/matchers/access.mli: Core Ir
