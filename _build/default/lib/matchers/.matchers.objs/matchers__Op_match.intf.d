lib/matchers/op_match.mli: Core Ir
