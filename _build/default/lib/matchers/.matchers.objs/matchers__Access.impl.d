lib/matchers/access.ml: Affine Affine_expr Affine_map Array Core Dialect Hashtbl Ir List Option Std_dialect String
