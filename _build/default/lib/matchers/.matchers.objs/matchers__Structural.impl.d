lib/matchers/structural.ml: Affine Core Dialect Ir List
