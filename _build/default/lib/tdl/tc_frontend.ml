open Ir
module D = Support.Diag

let shape_of_ref sizes (r : Tdl_ast.ref_) =
  List.map
    (fun (e : Tdl_ast.iexpr) ->
      (* The extent of a subscript: for bare indices the index extent; for
         windows (x + r) the sum of extents minus one (valid range). *)
      match e.ix_terms with
      | [] -> D.errorf "TC: constant subscripts are not supported"
      | terms ->
          List.fold_left
            (fun acc (v, k) ->
              if k <= 0 then
                D.errorf "TC: negative subscript coefficients unsupported";
              match List.assoc_opt v sizes with
              | Some n -> acc + (k * (n - 1))
              | None -> D.errorf "TC: no size given for index %s" v)
            (e.ix_const + 1) terms)
    r.indices

let func ~name ~sizes stmt_src =
  let stmt = Tdl_parser.parse_stmt stmt_src in
  let out, in1, in2 =
    match (stmt.op, stmt.rhs) with
    | Tdl_ast.Accumulate, Tdl_ast.R_mul (a, b) -> (stmt.lhs, a, b)
    | _ -> D.errorf "TC: expected an accumulation of a product"
  in
  let tensors = [ in1; in2; out ] in
  let f =
    Core.create_func ~name
      ~arg_types:
        (List.map
           (fun r -> Typ.memref (shape_of_ref sizes r) Typ.F32)
           tensors)
      ~arg_hints:(List.map (fun (r : Tdl_ast.ref_) -> r.tensor) tensors)
      ()
  in
  let bindings =
    List.map2
      (fun (r : Tdl_ast.ref_) v -> (r.tensor, v))
      tensors (Core.func_args f)
  in
  (* Reuse the TDL pipeline: classify the statement as a tactic pattern,
     synthesize builders, and materialize them. *)
  let tds =
    Frontend.lower
      { Tdl_ast.t_name = name; t_pattern = stmt; t_builder = [] }
  in
  let b = Builder.at_end (Core.func_entry f) in
  Backend.materialize b tds bindings;
  ignore (Builder.build b "func.return");
  Verifier.verify f;
  f

let module_of ~name ~sizes stmt_src =
  let m = Core.create_module () in
  Core.append_op (Core.module_block m) (func ~name ~sizes stmt_src);
  m
