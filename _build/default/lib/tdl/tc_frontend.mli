(** A Teckyl-style Tensor Comprehensions entry point (Figure 2's
    high-level frontends): turn an Einstein-notation statement directly
    into a function over Linalg operations — entering the multi-level IR
    at the top of the mountain, where MET enters at the valley.

    {v
    let f = Tc_frontend.func ~name:"mm"
              ~sizes:[ ("i", 64); ("j", 64); ("k", 64) ]
              "C(i,j) += A(i,k) * B(k,j)"
    v}

    Tensor arguments appear in order of first occurrence in the statement
    (inputs first, output last, matching Linalg convention); shapes derive
    from the index extents. The statement is classified exactly like a
    TDL pattern (matmul / matvec / conv2d / TTGT contraction). *)

(** Raises {!Support.Diag.Error} on statements outside the contraction
    forms or with missing index sizes. The function verifies. *)
val func :
  name:string -> sizes:(string * int) list -> string -> Ir.Core.op

(** [module_of ~name ~sizes stmt] — the function wrapped in a module. *)
val module_of :
  name:string -> sizes:(string * int) list -> string -> Ir.Core.op
