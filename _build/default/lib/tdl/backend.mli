(** Multi-Level Tactics backend: compiles a TDS entry into matcher and
    builder code hooked into the pattern-rewrite engine (§III, Figure 3 —
    where the paper's TableGen backend generates C++, we generate
    closures).

    The generated pattern, applied to an [affine.for]:
    - structurally matches a perfect nest whose depth equals the number of
      pattern index variables, with unit steps and constant bounds
      starting at 0;
    - runs the generated access matchers on the innermost block;
    - validates that the matched iteration space covers the accessed
      arrays exactly (every subscript spans [0, extent) of its memref
      dimension, and every nest loop is bound to a placeholder) — partial
      contractions must not be raised;
    - on success executes the builder steps, allocating intermediate
      buffers (shape inference runs forward and backward over the step
      list), inserting the high-level operations before the nest, and
      erasing the nest. *)

type target =
  | To_linalg  (** [-raise-affine-to-linalg] *)
  | To_affine_matmul
      (** [-raise-affine-to-affine] (§5.1): only for pure-GEMM tactics *)

(** [compile ?target tds] — raises {!Support.Diag.Error} at compile time
    for tactics unsupported by the target (e.g. TTGT under
    [To_affine_matmul]). *)
val compile : ?target:target -> Tds.tactic -> Ir.Rewriter.pattern

(** Convenience: TDL source → compiled rewrite patterns. *)
val compile_tdl : ?target:target -> string -> Ir.Rewriter.pattern list

(** [materialize b tds bindings] runs a tactic's builder steps directly —
    no matching — with the pattern tensors bound to the given memref
    values; intermediates are allocated. Used by the TC frontend
    (Teckyl-style high-level entry) to emit Linalg from an Einstein
    statement. Raises {!Support.Diag.Error} when shapes cannot be
    inferred or do not fit the builders. *)
val materialize :
  Ir.Builder.t -> Tds.tactic -> (string * Ir.Core.value) list -> unit
