(** Lexer and recursive-descent parser for TDL (grammar in Figure 4).

    Accepted forms:
    {v
    def GEMM {
      pattern = builder C(i,j) += A(i,k) * B(k,j)     // Listing 8
    }

    def TTGT {
      pattern
        C(a,b,c) += A(a,c,d) * B(d,b)
      builder
        D(f,b) = C(a,b,c) where f = a * c             // Listing 3
        E(f,d) = A(a,c,d) where f = a * c
        D(f,b) += E(f,d) * B(d,b)
        C(a,b,c) = D(f,b) where f = a * c
    }
    v}

    A [pattern] with no [builder] section auto-synthesizes the builders
    (classification + TTGT, see {!Frontend}). *)

val parse : ?file:string -> string -> Tdl_ast.tactic list

val parse_one : ?file:string -> string -> Tdl_ast.tactic

(** Parse a bare statement (used by tests and the contraction-spec
    tactic generator). *)
val parse_stmt : ?file:string -> string -> Tdl_ast.stmt

(** {2 Internals shared with the TDS parser} *)

type token =
  | Def
  | Pattern
  | Builder
  | Where
  | Ident of string
  | Int of int
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Comma
  | Eq
  | Plus_eq
  | Star
  | Plus
  | Lt
  | Gt
  | Lbracket
  | Rbracket
  | Semi
  | Colon
  | Eof

type ltok = { tok : token; loc : Support.Loc.t }
type state = { mutable toks : ltok list }

val tokenize : file:string -> string -> ltok list
val token_to_string : token -> string
val peek : state -> ltok
val next : state -> ltok
val expect : state -> token -> unit
val expect_ident : state -> string
val parse_stmt_at : state -> Tdl_ast.stmt
