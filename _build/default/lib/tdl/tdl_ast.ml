type iexpr = { ix_terms : (string * int) list; ix_const : int }

let var v = { ix_terms = [ (v, 1) ]; ix_const = 0 }

let iexpr_to_string e =
  let parts =
    List.map
      (fun (v, k) -> if k = 1 then v else Printf.sprintf "%d*%s" k v)
      e.ix_terms
  in
  let parts =
    if e.ix_const = 0 && parts <> [] then parts
    else parts @ [ string_of_int e.ix_const ]
  in
  String.concat " + " parts

type ref_ = { tensor : string; indices : iexpr list }

type assign = Assign | Accumulate

type rhs = R_ref of ref_ | R_mul of ref_ * ref_

type stmt = {
  lhs : ref_;
  op : assign;
  rhs : rhs;
  where : (string * string list) option;
}

type tactic = { t_name : string; t_pattern : stmt; t_builder : stmt list }

let simple_indices r =
  List.fold_right
    (fun e acc ->
      match (e.ix_terms, e.ix_const, acc) with
      | [ (v, 1) ], 0, Some tl -> Some (v :: tl)
      | _ -> None)
    r.indices (Some [])

let ref_vars r =
  List.concat_map (fun e -> List.map fst e.ix_terms) r.indices

let stmt_vars s =
  let rhs_vars =
    match s.rhs with
    | R_ref r -> ref_vars r
    | R_mul (a, b) -> ref_vars a @ ref_vars b
  in
  List.fold_left
    (fun acc v -> if List.mem v acc then acc else acc @ [ v ])
    [] (ref_vars s.lhs @ rhs_vars)

let pp_ref fmt r =
  Format.fprintf fmt "%s(%s)" r.tensor
    (String.concat ", " (List.map iexpr_to_string r.indices))

let pp_stmt fmt s =
  let op = match s.op with Assign -> "=" | Accumulate -> "+=" in
  Format.fprintf fmt "%a %s " pp_ref s.lhs op;
  (match s.rhs with
  | R_ref r -> pp_ref fmt r
  | R_mul (a, b) -> Format.fprintf fmt "%a * %a" pp_ref a pp_ref b);
  match s.where with
  | Some (f, group) ->
      Format.fprintf fmt " where %s = %s" f (String.concat " * " group)
  | None -> ()

let pp_tactic fmt t =
  Format.fprintf fmt "def %s {\n  pattern\n    %a\n" t.t_name pp_stmt
    t.t_pattern;
  if t.t_builder <> [] then begin
    Format.fprintf fmt "  builder\n";
    List.iter (fun s -> Format.fprintf fmt "    %a\n" pp_stmt s) t.t_builder
  end;
  Format.fprintf fmt "}\n"

let stmt_to_string s = Format.asprintf "%a" pp_stmt s
