(** AST of the Tactics Description Language (TDL, §III-A and Figure 4):
    Einstein-notation patterns and builder recipes, in a syntax borrowed
    from Tensor Comprehensions. *)

(** Subscript expressions: linear combinations of index variables, e.g.
    [x + r] for convolution windows or [2*i + 1]. *)
type iexpr = {
  ix_terms : (string * int) list;  (** (index variable, coefficient) *)
  ix_const : int;
}

val var : string -> iexpr
val iexpr_to_string : iexpr -> string

(** A tensor reference [C(a, b, c)]. *)
type ref_ = { tensor : string; indices : iexpr list }

type assign = Assign  (** [=] *) | Accumulate  (** [+=] *)

type rhs =
  | R_ref of ref_
  | R_mul of ref_ * ref_

(** A TDL statement, optionally with a grouping clause
    [where f = a * c] introducing a fused index. *)
type stmt = {
  lhs : ref_;
  op : assign;
  rhs : rhs;
  where : (string * string list) option;
}

type tactic = {
  t_name : string;
  t_pattern : stmt;
  t_builder : stmt list;  (** empty = auto-synthesize (Listing 8 style) *)
}

(** Index variables of a reference, in order, for bare-variable
    subscripts only ([None] if some subscript is compound). *)
val simple_indices : ref_ -> string list option

(** All index variables appearing in a statement. *)
val stmt_vars : stmt -> string list

val pp_stmt : Format.formatter -> stmt -> unit
val pp_tactic : Format.formatter -> tactic -> unit
val stmt_to_string : stmt -> string
