lib/tdl/tc_frontend.ml: Backend Builder Core Frontend Ir List Support Tdl_ast Tdl_parser Typ Verifier
