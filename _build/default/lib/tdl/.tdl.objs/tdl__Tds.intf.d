lib/tdl/tds.mli: Format Tdl_ast
