lib/tdl/tdl_parser.mli: Support Tdl_ast
