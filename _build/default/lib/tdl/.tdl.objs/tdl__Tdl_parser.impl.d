lib/tdl/tdl_parser.ml: List Printf String Support Tdl_ast
