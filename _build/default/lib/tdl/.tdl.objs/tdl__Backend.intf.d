lib/tdl/backend.mli: Ir Tds
