lib/tdl/tdl_ast.mli: Format
