lib/tdl/frontend.ml: Array Fun Ir List Option Printf String Support Tdl_ast Tdl_parser Tds
