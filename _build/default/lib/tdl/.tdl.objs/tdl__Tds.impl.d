lib/tdl/tds.ml: Format List String Support Tdl_ast Tdl_parser
