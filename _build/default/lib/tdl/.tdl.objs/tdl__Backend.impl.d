lib/tdl/backend.ml: Affine Affine_map Array Attr Core Frontend Hashtbl Ir Linalg List Matchers Option Rewriter Std_dialect String Support Tdl_ast Tds Typ
