lib/tdl/frontend.mli: Tdl_ast Tds
