lib/tdl/tc_frontend.mli: Ir
