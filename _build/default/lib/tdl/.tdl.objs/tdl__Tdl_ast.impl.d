lib/tdl/tdl_ast.ml: Format List Printf String
