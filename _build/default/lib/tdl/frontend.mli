(** The TDL DSL frontend: processes the declarative specification and
    emits the TableGen-based TDS entry (§III, Figure 3, orange box).

    Two paths:
    - a tactic with an explicit [builder] section (Listing 3) has each
      builder statement translated to transpose/reshape/matmul steps
      (the Listing 3 → Listing 4 mapping);
    - a tactic with only a [pattern] (Listing 8) is {e classified} —
      matmul, matvec (either orientation), conv2d — and, for general
      tensor contractions, the TTGT (Transpose-Transpose-GEMM-Transpose)
      builder sequence is synthesized automatically: inputs are permuted
      so free and contracted index groups are contiguous, reshaped to
      matrices, multiplied, and the result folded back. Redundant steps
      (identity permutations, singleton groupings) are elided, so a plain
      GEMM pattern lowers to a single [matmulBuilder]. *)

(** [lower tactic] — raises {!Support.Diag.Error} on patterns outside the
    supported contraction forms. *)
val lower : Tdl_ast.tactic -> Tds.tactic

(** [lower_source src] — parse TDL and lower every tactic. *)
val lower_source : ?file:string -> string -> Tds.tactic list

(** [gemm_tdl] — the Listing 8 tactic source. *)
val gemm_tdl : string

(** [ttgt_tdl] — the Listing 3 tactic source. *)
val ttgt_tdl : string

(** [contraction_tdl ~name spec_out spec_in1 spec_in2] builds TDL source
    for an arbitrary contraction, e.g.
    [contraction_tdl ~name:"T" "abc" "acd" "db"] — used to generate the
    benchmark tactics from paper specs. *)
val contraction_tdl : name:string -> string -> string -> string -> string
