(** The IR interpreter: executes functions at any abstraction level (affine
    loops, scf loops, Linalg named ops, BLAS calls) over real float buffers.

    This is the reproduction's semantic ground truth: every raising or
    lowering path is validated by checking that the transformed function
    computes the same buffers as the original (the paper relies on MLIR's
    verifier and testing for this).

    Interpretation is intentionally simple and slow; performance questions
    are answered by the {!Machine} library instead. *)

exception Runtime_error of string

(** [run_func f args] executes a [func.func]; [args] provides one buffer
    per memref argument (mutated in place). *)
val run_func : Ir.Core.op -> Buffer.t list -> unit

(** [run m name args] — look up and run a function of a module. *)
val run : Ir.Core.op -> string -> Buffer.t list -> unit

(** [run_on_random m name ~seed shapes] — convenience for tests: allocate
    buffers per the function signature, fill them with reproducible random
    data, run, and return the buffers. *)
val run_on_random : Ir.Core.op -> string -> seed:int -> Buffer.t list

(** [equivalent m1 m2 name ~seed] — run the same-named function of two
    modules on identical random inputs and compare all buffers. Returns
    the maximum element-wise difference. *)
val equivalent : ?eps:float -> Ir.Core.op -> Ir.Core.op -> string ->
  seed:int -> bool
