lib/interp/buffer.ml: Array Float Format Ir Printf Random String
