lib/interp/kernels.ml: Array Buffer Ir Linalg List Support
