lib/interp/buffer.mli: Format Ir
