lib/interp/eval.ml: Affine Affine_map Array Attr Buffer Core Format Hashtbl Ir Kernels Linalg List Printer Typ
