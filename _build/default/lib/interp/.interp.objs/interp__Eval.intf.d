lib/interp/eval.mli: Buffer Ir
