lib/interp/kernels.mli: Buffer Ir
