(** Reference implementations of the high-level operations (Linalg and
    BLAS dialects) used by the interpreter. All follow the accumulating
    buffer semantics documented in {!Linalg.Linalg_ops}. *)

val matmul : Buffer.t -> Buffer.t -> Buffer.t -> unit

(** [matvec ?transpose a x y]: y += A x, or y += Aᵀ x when [transpose]. *)
val matvec : ?transpose:bool -> Buffer.t -> Buffer.t -> Buffer.t -> unit

val transpose : perm:int array -> Buffer.t -> Buffer.t -> unit

(** Reshape between row-major contiguous buffers is a plain copy. *)
val reshape_copy : Buffer.t -> Buffer.t -> unit

val conv2d_nchw : Buffer.t -> Buffer.t -> Buffer.t -> unit

(** [contract ~maps ~dims a b c]: generic contraction over the iteration
    space [dims]; [maps] take the space to each operand's subscripts. *)
val contract :
  maps:Ir.Affine_map.t list -> dims:int array -> Buffer.t -> Buffer.t ->
  Buffer.t -> unit

val fill : float -> Buffer.t -> unit

(** Iteration-space extents for a [linalg.contract]: inferred by matching
    each map result expression against the operand shapes. Raises
    {!Support.Diag.Error} if some dimension is unconstrained or
    inconsistent. *)
val infer_contract_dims :
  maps:Ir.Affine_map.t list -> shapes:int array list -> int array
