type t = { shape : int array; strides : int array; data : float array }

let strides_of shape =
  let n = Array.length shape in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * shape.(i + 1)
  done;
  strides

let create shape =
  let shape = Array.of_list shape in
  let total = Array.fold_left ( * ) 1 shape in
  { shape; strides = strides_of shape; data = Array.make total 0. }

let of_type t =
  match Ir.Typ.static_shape t with
  | Some shape -> create shape
  | None ->
      invalid_arg
        (Printf.sprintf "Buffer.of_type: %s is not a static memref"
           (Ir.Typ.to_string t))

let rank b = Array.length b.shape
let num_elements b = Array.length b.data

let linear_index b idx =
  if Array.length idx <> Array.length b.shape then
    invalid_arg "Buffer: index rank mismatch";
  let off = ref 0 in
  for i = 0 to Array.length idx - 1 do
    if idx.(i) < 0 || idx.(i) >= b.shape.(i) then
      invalid_arg
        (Printf.sprintf "Buffer: index %d out of bounds [0, %d) at dim %d"
           idx.(i) b.shape.(i) i);
    off := !off + (idx.(i) * b.strides.(i))
  done;
  !off

let get b idx = b.data.(linear_index b idx)
let set b idx v = b.data.(linear_index b idx) <- v

let iter_indices shape f =
  let n = Array.length shape in
  let idx = Array.make n 0 in
  let total = Array.fold_left ( * ) 1 shape in
  for _ = 1 to total do
    f idx;
    (* Increment the index vector like an odometer. *)
    let j = ref (n - 1) in
    let carry = ref true in
    while !carry && !j >= 0 do
      idx.(!j) <- idx.(!j) + 1;
      if idx.(!j) >= shape.(!j) then (
        idx.(!j) <- 0;
        decr j)
      else carry := false
    done
  done

let init shape f =
  let b = create shape in
  iter_indices b.shape (fun idx -> set b idx (f idx));
  b

let randomize ~seed b =
  let st = Random.State.make [| seed |] in
  for i = 0 to Array.length b.data - 1 do
    b.data.(i) <- Random.State.float st 1.0
  done

let copy b = { b with data = Array.copy b.data }
let fill b v = Array.fill b.data 0 (Array.length b.data) v

let max_abs_diff a b =
  if a.shape <> b.shape then invalid_arg "Buffer.max_abs_diff: shape mismatch";
  let m = ref 0. in
  for i = 0 to Array.length a.data - 1 do
    m := Float.max !m (Float.abs (a.data.(i) -. b.data.(i)))
  done;
  !m

let approx_equal ?(eps = 1e-4) a b =
  a.shape = b.shape
  &&
  let ok = ref true in
  for i = 0 to Array.length a.data - 1 do
    let x = a.data.(i) and y = b.data.(i) in
    let scale = Float.max 1.0 (Float.max (Float.abs x) (Float.abs y)) in
    if Float.abs (x -. y) > eps *. scale then ok := false
  done;
  !ok

let pp fmt b =
  Format.fprintf fmt "buffer<%s>["
    (String.concat "x" (Array.to_list (Array.map string_of_int b.shape)));
  let n = min 8 (Array.length b.data) in
  for i = 0 to n - 1 do
    if i > 0 then Format.fprintf fmt ", ";
    Format.fprintf fmt "%g" b.data.(i)
  done;
  if Array.length b.data > n then Format.fprintf fmt ", ...";
  Format.fprintf fmt "]"
