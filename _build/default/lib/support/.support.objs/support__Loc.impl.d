lib/support/loc.ml: Format
