lib/support/diag.ml: Format Loc
