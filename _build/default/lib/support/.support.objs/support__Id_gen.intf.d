lib/support/id_gen.mli:
