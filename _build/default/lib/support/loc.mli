(** Source locations for the textual frontends (mini-C, TDL, IR parser). *)

type t = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
}

val unknown : t

val make : file:string -> line:int -> col:int -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
