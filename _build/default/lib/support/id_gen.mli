(** Monotonic unique-id generation, used for SSA values, ops and blocks. *)

type t

val create : unit -> t

(** [next t] returns a fresh id, starting at 0. *)
val next : t -> int

(** A process-wide generator for entities that only need global uniqueness. *)
val global : t
