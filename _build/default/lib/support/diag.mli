(** Diagnostics: structured errors raised by frontends, verifiers and passes.

    All user-facing failures in the library go through [error] (or its
    formatted variant [errorf]) so callers can catch a single exception
    type, and tests can assert on messages. *)

exception Error of Loc.t * string

(** [error ~loc msg] raises {!Error}. [loc] defaults to {!Loc.unknown}. *)
val error : ?loc:Loc.t -> string -> 'a

(** [errorf ~loc fmt ...] raises {!Error} with a formatted message. *)
val errorf : ?loc:Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a

(** [wrap f] runs [f ()] and converts an {!Error} into [Result.Error msg]. *)
val wrap : (unit -> 'a) -> ('a, string) result

(** Render an {!Error} payload as ["file:line:col: msg"]. *)
val to_string : Loc.t -> string -> string
