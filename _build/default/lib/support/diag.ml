exception Error of Loc.t * string

let error ?(loc = Loc.unknown) msg = raise (Error (loc, msg))

let errorf ?(loc = Loc.unknown) fmt =
  Format.kasprintf (fun msg -> raise (Error (loc, msg))) fmt

let to_string loc msg =
  if loc == Loc.unknown then msg else Loc.to_string loc ^ ": " ^ msg

let wrap f =
  match f () with
  | v -> Ok v
  | exception Error (loc, msg) -> Error (to_string loc msg)
