(** The affine dialect: loops with affine bounds and affine memory accesses,
    plus the high-level [affine.matmul] operation of §5.1.

    [affine.for] semantics: the induction variable ranges over
    [max(lb exprs) <= iv < min(ub exprs)] with a positive constant step, as
    in MLIR (multi-result bound maps are what loop tiling produces for
    non-divisible tile sizes).

    Operand layout of [affine.for]: the [lower_bound] map's operands
    followed by the [upper_bound] map's operands. *)

open Ir

val register : unit -> unit

(** {2 affine.for} *)

type bound = Affine_map.t * Core.value list

(** [for_ b ~lb ~ub ~step body] builds a loop; [body] gets a builder at the
    end of the (fresh) body block and the induction variable. A terminating
    [affine.yield] is appended automatically. *)
val for_ :
  Builder.t ->
  ?hint:string ->
  lb:bound ->
  ub:bound ->
  ?step:int ->
  (Builder.t -> Core.value -> unit) ->
  Core.op

(** [for_const b ~lb ~ub body]: constant-bound convenience. *)
val for_const :
  Builder.t ->
  ?hint:string ->
  lb:int ->
  ub:int ->
  ?step:int ->
  (Builder.t -> Core.value -> unit) ->
  Core.op

val is_for : Core.op -> bool
val for_iv : Core.op -> Core.value
val for_body : Core.op -> Core.block
val for_lb : Core.op -> bound
val for_ub : Core.op -> bound
val for_step : Core.op -> int

(** [for_const_bounds op] is [Some (lb, ub)] when both bounds are single
    constant expressions. *)
val for_const_bounds : Core.op -> (int * int) option

(** [for_trip_count op] for constant bounds and step: number of iterations. *)
val for_trip_count : Core.op -> int option

(** {2 Memory access} *)

(** [load b memref (map, indices)]: [map] is applied to the index operands
    to produce the subscripts. *)
val load :
  Builder.t -> Core.value -> Affine_map.t * Core.value list -> Core.value

(** [load_simple b memref ivs]: identity access [A[ivs...]]. *)
val load_simple : Builder.t -> Core.value -> Core.value list -> Core.value

val store :
  Builder.t ->
  Core.value ->
  Core.value ->
  Affine_map.t * Core.value list ->
  Core.op

val store_simple :
  Builder.t -> Core.value -> Core.value -> Core.value list -> Core.op

val is_load : Core.op -> bool
val is_store : Core.op -> bool

(** Accessors shared by load/store: the accessed memref, the access map,
    and the index operands the map applies to. *)
val access_memref : Core.op -> Core.value

val access_map : Core.op -> Affine_map.t
val access_indices : Core.op -> Core.value list

(** For a store, the value being stored. *)
val stored_value : Core.op -> Core.value

(** {2 affine.apply} *)

val apply :
  Builder.t -> Affine_map.t -> Core.value list -> Core.value

(** {2 affine.matmul (§5.1 high-level op)} *)

(** [matmul b a bm c]: C += A * B at the affine level; lowered either via
    the BLIS-schedule path or to naive loops. *)
val matmul : Builder.t -> Core.value -> Core.value -> Core.value -> Core.op

val is_matmul : Core.op -> bool
