(** Loop-nest utilities over the affine dialect, shared by the structural
    matchers, the tiling transform and the trace generator. *)

open Ir

(** Operations of a loop body excluding the terminating [affine.yield]. *)
val body_ops : Core.op -> Core.op list

(** [perfect_nest op] walks inwards from an [affine.for]: as long as the
    body consists of exactly one nested [affine.for] (plus the yield),
    descends. Returns the loops from outermost to innermost. *)
val perfect_nest : Core.op -> Core.op list

(** [nest_with_body op] is [(loops, ops)] where [ops] is the innermost
    body (without yield). *)
val nest_with_body : Core.op -> Core.op list * Core.op list

(** Induction variables of a nest, outermost first. *)
val nest_ivs : Core.op list -> Core.value list

(** [top_level_loops func] lists the [affine.for] ops directly in the entry
    block of a function. *)
val top_level_loops : Core.op -> Core.op list

(** [all_loops root] lists every [affine.for] nested under [root],
    pre-order. *)
val all_loops : Core.op -> Core.op list

(** [nest_trip_counts loops] — constant trip counts, outermost first;
    [None] if any loop has non-constant bounds. *)
val nest_trip_counts : Core.op list -> int list option

(** [iv_position ivs v] — index of [v] among the induction variables. *)
val iv_position : Core.value list -> Core.value -> int option

(** [access_stride_wrt iv op]: derivative of the access's element offset
    with respect to [iv] for an [affine.load]/[affine.store] over a
    statically shaped memref, or [None] when the subscripts are
    non-linear in [iv]. Shared by the vectorizability analysis and the
    interchange legality check. *)
val access_stride_wrt : Core.value -> Core.op -> int option
