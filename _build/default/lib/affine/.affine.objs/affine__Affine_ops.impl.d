lib/affine/affine_ops.ml: Affine_expr Affine_map Array Attr Builder Core Dialect Ir List Std_dialect String Support Typ
