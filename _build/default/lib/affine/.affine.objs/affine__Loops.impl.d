lib/affine/loops.ml: Affine_expr Affine_map Affine_ops Array Core Ir List String Typ
