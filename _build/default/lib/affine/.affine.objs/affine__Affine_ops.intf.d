lib/affine/affine_ops.mli: Affine_map Builder Core Ir
