lib/affine/loops.mli: Core Ir
