open Ir

let body_ops op =
  Core.ops_of_block (Affine_ops.for_body op)
  |> List.filter (fun (o : Core.op) -> not (String.equal o.o_name "affine.yield"))

let rec perfect_nest op =
  match body_ops op with
  | [ inner ] when Affine_ops.is_for inner -> op :: perfect_nest inner
  | _ -> [ op ]

let nest_with_body op =
  let loops = perfect_nest op in
  let innermost = List.nth loops (List.length loops - 1) in
  (loops, body_ops innermost)

let nest_ivs loops = List.map Affine_ops.for_iv loops

let top_level_loops func =
  Core.ops_of_block (Core.func_entry func) |> List.filter Affine_ops.is_for

let all_loops root =
  let acc = ref [] in
  Core.walk root (fun op -> if Affine_ops.is_for op then acc := op :: !acc);
  List.rev !acc

let nest_trip_counts loops =
  List.fold_right
    (fun l acc ->
      match (Affine_ops.for_trip_count l, acc) with
      | Some n, Some tl -> Some (n :: tl)
      | _ -> None)
    loops (Some [])

let iv_position ivs v =
  let rec go i = function
    | [] -> None
    | iv :: _ when Core.value_equal iv v -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 ivs

let elem_strides shape =
  let n = List.length shape in
  let arr = Array.of_list shape in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * arr.(i + 1)
  done;
  strides

let access_stride_wrt iv (op : Core.op) =
  match Typ.static_shape (Affine_ops.access_memref op).Core.v_typ with
  | None -> None
  | Some shape ->
      let map = Affine_ops.access_map op in
      let operands = Array.of_list (Affine_ops.access_indices op) in
      let strides = elem_strides shape in
      let total = ref 0 in
      let ok = ref true in
      List.iteri
        (fun r e ->
          match Affine_expr.linearize e with
          | Some lin ->
              List.iter
                (fun (d, k) ->
                  if Core.value_equal operands.(d) iv then
                    total := !total + (k * strides.(r)))
                lin.Affine_expr.dim_coeffs
          | None ->
              if
                List.exists
                  (fun d -> Core.value_equal operands.(d) iv)
                  (Affine_expr.used_dims e)
              then ok := false)
        map.Affine_map.exprs;
      if !ok then Some !total else None
