lib/workloads/contraction_spec.ml: List Printf String Support
