lib/workloads/polybench.mli:
