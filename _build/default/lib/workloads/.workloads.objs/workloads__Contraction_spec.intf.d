lib/workloads/contraction_spec.mli:
