lib/workloads/polybench.ml: Array Buffer Contraction_spec List Printf String
