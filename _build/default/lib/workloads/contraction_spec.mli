(** Tensor-contraction specifications in the paper's notation, e.g.
    ["abc-acd-db"] for [C(a,b,c) += A(a,c,d) * B(d,b)] (output indices,
    then the two input index groups, dash-separated). *)

type t = {
  out : char list;
  in1 : char list;
  in2 : char list;
}

(** [parse "abc-acd-db"] — raises {!Support.Diag.Error} on malformed specs
    (repeated indices within a group, an output index missing from both
    inputs, or an input index that appears nowhere else, i.e. a broadcast
    rather than a contraction). *)
val parse : string -> t

val to_string : t -> string

(** Indices summed over: in the inputs but not the output. *)
val contracted : t -> char list

(** All distinct indices in order of first appearance (out, in1, in2) —
    the canonical loop order of the generated kernel. *)
val all_indices : t -> char list

(** The free indices of [in1]/[in2] (shared with the output), in output
    order — the M/N groups of a TTGT mapping. *)
val free1 : t -> char list

val free2 : t -> char list

(** [c_source spec ~sizes ~name] generates the mini-C kernel: a zero
    initialization nest for the output followed by the contraction nest
    (Listing 2 of the paper). [sizes] assigns an extent to every index. *)
val c_source :
  t -> sizes:(char * int) list -> ?init:bool -> name:string -> unit -> string

(** Scalar multiplications performed by the contraction nest. *)
val flops : t -> sizes:(char * int) list -> float

(** Extent lookup helper; raises if missing. *)
val size_of : (char * int) list -> char -> int

(** The seven contraction benchmarks of Figure 9, with the scaled-down
    default sizes used in our reproduction: name, spec, sizes. *)
val paper_benchmarks : unit -> (string * t * (char * int) list) list
