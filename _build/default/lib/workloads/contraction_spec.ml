module D = Support.Diag

type t = { out : char list; in1 : char list; in2 : char list }

let chars s = List.init (String.length s) (String.get s)

let check_distinct group cs =
  let sorted = List.sort compare cs in
  let rec dup = function
    | a :: b :: _ when a = b -> Some a
    | _ :: rest -> dup rest
    | [] -> None
  in
  match dup sorted with
  | Some c -> D.errorf "contraction spec: index %C repeated in %s" c group
  | None -> ()

let parse s =
  match String.split_on_char '-' s with
  | [ o; a; b ] ->
      let out = chars o and in1 = chars a and in2 = chars b in
      if out = [] || in1 = [] || in2 = [] then
        D.errorf "contraction spec %S: empty index group" s;
      check_distinct "output" out;
      check_distinct "first input" in1;
      check_distinct "second input" in2;
      List.iter
        (fun c ->
          if not (List.mem c in1 || List.mem c in2) then
            D.errorf
              "contraction spec %S: output index %C missing from inputs" s c)
        out;
      List.iter
        (fun c ->
          if
            not
              (List.mem c out
              || (List.mem c in1 && List.mem c in2))
          then
            D.errorf
              "contraction spec %S: index %C is neither free nor contracted"
              s c)
        (in1 @ in2);
      { out; in1; in2 }
  | _ -> D.errorf "contraction spec %S: expected three dash-separated groups" s

let string_of_chars cs = String.init (List.length cs) (List.nth cs)

let to_string t =
  Printf.sprintf "%s-%s-%s" (string_of_chars t.out) (string_of_chars t.in1)
    (string_of_chars t.in2)

let contracted t =
  List.filter (fun c -> not (List.mem c t.out)) (t.in1 @ t.in2)
  |> List.sort_uniq compare

let all_indices t =
  List.fold_left
    (fun acc c -> if List.mem c acc then acc else acc @ [ c ])
    [] (t.out @ t.in1 @ t.in2)

let free1 t = List.filter (fun c -> List.mem c t.in1) t.out
let free2 t = List.filter (fun c -> List.mem c t.in2) t.out

let size_of sizes c =
  match List.assoc_opt c sizes with
  | Some n -> n
  | None -> D.errorf "contraction sizes: no extent for index %C" c

let subscripts cs =
  String.concat "" (List.map (fun c -> Printf.sprintf "[%c]" c) cs)

let decl name cs sizes =
  Printf.sprintf "float %s%s" name
    (String.concat ""
       (List.map (fun c -> Printf.sprintf "[%d]" (size_of sizes c)) cs))

let loops_over cs sizes body =
  let rec go = function
    | [] -> body
    | c :: rest ->
        Printf.sprintf "for (int %c = 0; %c < %d; ++%c) { %s }" c c
          (size_of sizes c) c (go rest)
  in
  go cs

let c_source t ~sizes ?(init = true) ~name () =
  let stmt =
    Printf.sprintf "C%s += A%s * B%s;" (subscripts t.out) (subscripts t.in1)
      (subscripts t.in2)
  in
  let init_nest =
    if init then
      loops_over t.out sizes (Printf.sprintf "C%s = 0.0;" (subscripts t.out))
    else ""
  in
  let main_nest = loops_over (all_indices t) sizes stmt in
  Printf.sprintf "void %s(%s, %s, %s) {\n  %s\n  %s\n}\n" name
    (decl "A" t.in1 sizes) (decl "B" t.in2 sizes) (decl "C" t.out sizes)
    init_nest main_nest

let flops t ~sizes =
  List.fold_left
    (fun acc c -> acc *. float_of_int (size_of sizes c))
    2. (all_indices t)

(* Scaled-down extents. The paper draws these kernels from coupled-cluster
   and quantum-chemistry studies (Springer & Bientinesi); absolute sizes
   are irrelevant to the shape of the comparison, only the level-3 nature
   of the computation is. *)
let paper_benchmarks () =
  let specs =
    [
      ("ab-acd-dbc", "ab-acd-dbc");
      ("abc-acd-db", "abc-acd-db");
      ("abc-ad-bdc", "abc-ad-bdc");
      ("ab-cad-dcb", "ab-cad-dcb");
      ("abc-bda-dc", "abc-bda-dc");
      ("abcd-aebf-dfce", "abcd-aebf-dfce");
      ("abcd-aebf-fdec", "abcd-aebf-fdec");
    ]
  in
  List.map
    (fun (name, s) ->
      let t = parse s in
      (* Keep the iteration space around 1-3M points so the trace-driven
         cache simulation stays fast; extents shrink with index count. *)
      let base =
        match List.length (all_indices t) with
        | n when n <= 4 -> 32
        | 5 -> 18
        | _ -> 12
      in
      let sizes = List.map (fun c -> (c, base)) (all_indices t) in
      (name, t, sizes))
    specs
