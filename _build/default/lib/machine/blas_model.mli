(** Analytical model of the vendor-optimized library (the MKL-DNN /
    OpenBLAS stand-in), in the spirit of Low et al.'s "Analytical modeling
    is enough for high-performance BLIS" (the paper's [14]).

    Each routine costs the dynamic-link call overhead the paper observes
    (§5.2, the atax discussion) plus a roofline term:
    [max(flops / effective_peak, bytes / bandwidth)], where the effective
    peak ramps up with problem size ([peak * flops / (flops + ramp)]) to
    model packing and fringe overheads on small operands. *)

open Machine_model

val gemm_seconds : t -> m:int -> n:int -> k:int -> float

val gemv_seconds : t -> m:int -> n:int -> float

val transpose_seconds : t -> elems:int -> float

val copy_seconds : t -> elems:int -> float

val conv2d_seconds :
  t -> n:int -> c:int -> f:int -> oh:int -> ow:int -> kh:int -> kw:int ->
  float

(** The §5.1 path: [affine.matmul] lowered through the OpenBLAS/BLIS
    analytical schedule by the MLIR code generator — same shape as
    {!gemm_seconds} but at the machine's [blis_codegen_efficiency]
    fraction of the library peak, and without the dynamic-link overhead
    (the code is inlined, not called). *)
val blis_codegen_gemm_seconds : t -> m:int -> n:int -> k:int -> float
