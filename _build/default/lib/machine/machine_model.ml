type t = {
  name : string;
  freq_ghz : float;
  scalar_flops_per_cycle : float;
  vector_flops_per_cycle : float;
  l1_size : int;
  l2_size : int;
  l3_size : int;
  line : int;
  l1_ways : int;
  l2_ways : int;
  l3_ways : int;
  lat_l2 : float;
  lat_l3 : float;
  lat_mem : float;
  mlp : float;
  loop_overhead_cycles : float;
  mem_bw_gbs : float;
  blas_peak_gflops : float;
  blas_ramp_flops : float;
  blas_call_overhead_s : float;
  blis_codegen_efficiency : float;
}

let intel_i9 =
  {
    name = "intel-i9-9900k";
    freq_ghz = 3.6;
    scalar_flops_per_cycle = 1.0;
    vector_flops_per_cycle = 8.0;
    l1_size = 32 * 1024;
    l2_size = 256 * 1024;
    l3_size = 16 * 1024 * 1024;
    line = 64;
    l1_ways = 8;
    l2_ways = 4;
    l3_ways = 16;
    lat_l2 = 12.;
    lat_l3 = 40.;
    lat_mem = 180.;
    mlp = 4.;
    loop_overhead_cycles = 1.0;
    mem_bw_gbs = 35.;
    blas_peak_gflops = 145.5;
    blas_ramp_flops = 3e5;
    blas_call_overhead_s = 1.5e-5;
    blis_codegen_efficiency = 0.40;
  }

let amd_2920x =
  {
    name = "amd-2920x";
    freq_ghz = 4.3;
    scalar_flops_per_cycle = 1.0;
    vector_flops_per_cycle = 4.0;
    l1_size = 32 * 1024;
    l2_size = 512 * 1024;
    l3_size = 8 * 1024 * 1024;
    line = 64;
    l1_ways = 8;
    l2_ways = 8;
    l3_ways = 16;
    lat_l2 = 14.;
    lat_l3 = 45.;
    lat_mem = 220.;
    mlp = 4.;
    loop_overhead_cycles = 1.0;
    mem_bw_gbs = 28.;
    blas_peak_gflops = 63.6;
    blas_ramp_flops = 3e5;
    blas_call_overhead_s = 2e-5;
    blis_codegen_efficiency = 0.37;
  }

let platforms = [ intel_i9; amd_2920x ]

let fresh_hierarchy m =
  Cache.create_hierarchy
    ~l1:(Cache.create ~size:m.l1_size ~line:m.line ~ways:m.l1_ways)
    ~l2:(Cache.create ~size:m.l2_size ~line:m.line ~ways:m.l2_ways)
    ~l3:(Cache.create ~size:m.l3_size ~line:m.line ~ways:m.l3_ways)

let seconds_of_cycles m c = c /. (m.freq_ghz *. 1e9)

let stream_miss_cycles m =
  float_of_int m.line *. m.freq_ghz /. m.mem_bw_gbs
