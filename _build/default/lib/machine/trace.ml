open Ir
module A = Affine.Affine_ops
module D = Support.Diag

type stats = {
  mutable flops_scalar : float;
  mutable flops_vector : float;
  mutable mem_cycles : float;
  mutable iterations : float;
  mutable accesses : float;
}

let empty_stats () =
  {
    flops_scalar = 0.;
    flops_vector = 0.;
    mem_cycles = 0.;
    iterations = 0.;
    accesses = 0.;
  }

type address_map = (int, int) Hashtbl.t

let elem_strides typ =
  match Typ.static_shape typ with
  | Some shape ->
      let n = List.length shape in
      let arr = Array.of_list shape in
      let strides = Array.make n 1 in
      for i = n - 2 downto 0 do
        strides.(i) <- strides.(i + 1) * arr.(i + 1)
      done;
      strides
  | None -> D.errorf "trace: dynamic memref shapes unsupported"

let assign_addresses func =
  let addrs = Hashtbl.create 16 in
  let next = ref 4096 in
  let place (v : Core.value) =
    match Typ.static_shape v.Core.v_typ with
    | Some shape ->
        let bytes = 4 * List.fold_left ( * ) 1 shape in
        Hashtbl.replace addrs v.Core.v_id !next;
        (* Line-align and pad to avoid accidental full aliasing. *)
        next := !next + ((bytes + 127) / 128 * 128) + 128
    | None -> ()
  in
  List.iter place (Core.func_args func);
  Core.walk func (fun op ->
      if Std_dialect.Memref_ops.is_alloc op then place (Core.result op 0));
  addrs

(* ---- vectorizability -------------------------------------------------- *)

let access_stride_wrt iv op = Affine.Loops.access_stride_wrt iv op

let is_vectorizable ?(fast_math = false) loop =
  A.is_for loop
  && (not (List.exists A.is_for (Affine.Loops.body_ops loop)))
  &&
  let iv = A.for_iv loop in
  let ok = ref true in
  List.iter
    (fun op ->
      if A.is_load op || A.is_store op then
        match access_stride_wrt iv op with
        | Some 1 -> ()
        | Some 0 ->
            (* A store invariant in the loop iv is a reduction; without
               -ffast-math the compiler cannot reassociate it into SIMD
               lanes. *)
            if A.is_store op && not fast_math then ok := false
        | _ -> ok := false)
    (Affine.Loops.body_ops loop);
  !ok

(* ---- compilation ------------------------------------------------------ *)

type ctx = {
  model : Machine_model.t;
  hier : Cache.hierarchy;
  addrs : address_map;
  stats : stats;
  env : int array;
  slots : (int, int) Hashtbl.t;
  mutable next_slot : int;
  fast_math : bool;
}

let slot_of ctx (v : Core.value) =
  match Hashtbl.find_opt ctx.slots v.Core.v_id with
  | Some s -> s
  | None ->
      let s = ctx.next_slot in
      if s >= Array.length ctx.env then
        D.errorf "trace: too many index values";
      ctx.next_slot <- s + 1;
      Hashtbl.replace ctx.slots v.Core.v_id s;
      s

(* Unit-stride (prefetchable) accesses pay streaming-bandwidth cost per
   miss; non-streamed misses pay the level latency, amortized over the
   machine's memory-level parallelism. *)
let miss_cost ctx ~streamed level =
  let m = ctx.model in
  if level = 1 then 0.
  else if streamed then Machine_model.stream_miss_cycles m
  else
    let raw =
      match level with
      | 2 -> m.Machine_model.lat_l2
      | 3 -> m.Machine_model.lat_l3
      | _ -> m.Machine_model.lat_mem
    in
    raw /. m.Machine_model.mlp

let innermost_enclosing_loop (op : Core.op) =
  let rec up o =
    match Core.parent_op o with
    | Some p when A.is_for p -> Some p
    | Some p -> up p
    | None -> None
  in
  up op

let is_streamed (op : Core.op) =
  match innermost_enclosing_loop op with
  | None -> false
  | Some loop -> (
      match access_stride_wrt (A.for_iv loop) op with
      | Some s -> abs s <= 2
      | None -> false)

let compile_access ctx (op : Core.op) =
  let memref = A.access_memref op in
  let base =
    match Hashtbl.find_opt ctx.addrs memref.Core.v_id with
    | Some b -> b
    | None -> D.errorf "trace: access to a buffer with no address"
  in
  let strides = elem_strides memref.Core.v_typ in
  let exprs = Array.of_list (A.access_map op).Affine_map.exprs in
  let operand_slots =
    Array.of_list (List.map (slot_of ctx) (A.access_indices op))
  in
  let dims = Array.make (Array.length operand_slots) 0 in
  let stats = ctx.stats in
  let streamed = is_streamed op in
  fun () ->
    for i = 0 to Array.length dims - 1 do
      dims.(i) <- ctx.env.(operand_slots.(i))
    done;
    let off = ref 0 in
    for r = 0 to Array.length exprs - 1 do
      off := !off + (Affine_expr.eval ~dims ~syms:[||] exprs.(r) * strides.(r))
    done;
    let level = Cache.access_hierarchy ctx.hier (base + (4 * !off)) in
    stats.accesses <- stats.accesses +. 1.;
    stats.mem_cycles <- stats.mem_cycles +. miss_cost ctx ~streamed level

let eval_bound ctx ~minimize ((map, args) : A.bound) =
  let slots = List.map (slot_of ctx) args in
  let dims = Array.make (List.length args) 0 in
  let exprs = map.Affine_map.exprs in
  fun () ->
    List.iteri (fun i s -> dims.(i) <- ctx.env.(s)) slots;
    match exprs with
    | [] -> D.errorf "trace: empty bound map"
    | e :: rest ->
        List.fold_left
          (fun acc e' ->
            let v = Affine_expr.eval ~dims ~syms:[||] e' in
            if minimize then min acc v else max acc v)
          (Affine_expr.eval ~dims ~syms:[||] e)
          rest

let rec compile_block ctx (ops : Core.op list) =
  (* Returns (closures, direct float-op count). *)
  let closures = ref [] in
  let flops = ref 0 in
  List.iter
    (fun (op : Core.op) ->
      match op.o_name with
      | "affine.yield" -> ()
      | "affine.for" -> closures := compile_for ctx op :: !closures
      | "affine.load" | "affine.store" ->
          closures := compile_access ctx op :: !closures
      | "arith.constant" -> (
          match Core.attr op "value" with
          | Attr.Int i ->
              let s = slot_of ctx (Core.result op 0) in
              closures := (fun () -> ctx.env.(s) <- i) :: !closures
          | _ -> ())
      | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" ->
          incr flops
      | "arith.addi" | "arith.subi" | "arith.muli" | "arith.floordivsi"
      | "arith.remsi" ->
          let f =
            match op.o_name with
            | "arith.addi" -> ( + )
            | "arith.subi" -> ( - )
            | "arith.muli" -> ( * )
            | "arith.floordivsi" -> ( / )
            | _ -> ( mod )
          in
          let a = slot_of ctx (Core.operand op 0) in
          let b = slot_of ctx (Core.operand op 1) in
          let r = slot_of ctx (Core.result op 0) in
          closures :=
            (fun () -> ctx.env.(r) <- f ctx.env.(a) ctx.env.(b)) :: !closures
      | "affine.apply" ->
          let map = Attr.get_map (Core.attr op "map") in
          let slots =
            Array.of_list
              (List.map (slot_of ctx) (Array.to_list op.o_operands))
          in
          let dims = Array.make (Array.length slots) 0 in
          let e = List.hd map.Affine_map.exprs in
          let r = slot_of ctx (Core.result op 0) in
          closures :=
            (fun () ->
              for i = 0 to Array.length slots - 1 do
                dims.(i) <- ctx.env.(slots.(i))
              done;
              ctx.env.(r) <- Affine_expr.eval ~dims ~syms:[||] e)
            :: !closures
      | "memref.alloc" | "memref.dealloc" -> ()
      | name -> D.errorf "trace: cannot simulate operation '%s'" name)
    ops;
  (Array.of_list (List.rev !closures), !flops)

and compile_for ctx (op : Core.op) =
  let iv_slot = slot_of ctx (A.for_iv op) in
  let lb = eval_bound ctx ~minimize:false (A.for_lb op) in
  let ub = eval_bound ctx ~minimize:true (A.for_ub op) in
  let step = A.for_step op in
  let vectorized = is_vectorizable ~fast_math:ctx.fast_math op in
  let body, direct_flops = compile_block ctx (Affine.Loops.body_ops op) in
  let fl = float_of_int direct_flops in
  (* SIMD execution retires several logical iterations per hardware loop
     iteration: amortize the per-iteration branch/IV overhead. *)
  let iter_weight = if vectorized then 0.125 else 1.0 in
  let stats = ctx.stats in
  fun () ->
    let lo = lb () and hi = ub () in
    let i = ref lo in
    while !i < hi do
      ctx.env.(iv_slot) <- !i;
      for c = 0 to Array.length body - 1 do
        body.(c) ()
      done;
      if vectorized then stats.flops_vector <- stats.flops_vector +. fl
      else stats.flops_scalar <- stats.flops_scalar +. fl;
      stats.iterations <- stats.iterations +. iter_weight;
      i := !i + step
    done

let simulate ?(fast_math = false) model hier addrs stats ops =
  let ctx =
    {
      model;
      hier;
      addrs;
      stats;
      env = Array.make 4096 0;
      slots = Hashtbl.create 64;
      next_slot = 0;
      fast_math;
    }
  in
  let closures, top_flops = compile_block ctx ops in
  stats.flops_scalar <- stats.flops_scalar +. float_of_int top_flops;
  Array.iter (fun c -> c ()) closures
