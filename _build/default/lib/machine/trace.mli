(** Trace-driven simulation of affine loop nests: the nest is compiled to
    closures once, then its full iteration space is walked; every
    [affine.load]/[affine.store] produces a byte address that probes the
    cache hierarchy, while arithmetic is counted statically per iteration.

    Vectorizability follows the Clang-style check the paper's baselines
    rely on: an innermost loop whose accesses all have address stride 0 or
    one element w.r.t. its induction variable is issued at the machine's
    vector rate, otherwise at the scalar rate. *)

open Ir

type stats = {
  mutable flops_scalar : float;
  mutable flops_vector : float;
  mutable mem_cycles : float;
  mutable iterations : float;
  mutable accesses : float;
}

val empty_stats : unit -> stats

(** Base byte addresses per buffer value id. *)
type address_map = (int, int) Hashtbl.t

(** [assign_addresses func] lays out arguments and allocations. *)
val assign_addresses : Core.op -> address_map

(** [simulate m hierarchy addresses stats ops] executes the given
    top-level affine ops (loops and straight-line affine/arith code),
    accumulating into [stats]. Raises {!Support.Diag.Error} on
    non-affine ops. *)
val simulate :
  ?fast_math:bool ->
  Machine_model.t ->
  Cache.hierarchy ->
  address_map ->
  stats ->
  Core.op list ->
  unit

(** [is_vectorizable ?fast_math loop] — exposed for tests: the
    innermost-loop unit-stride check. Reductions (stores invariant in the
    loop iv) only vectorize under [fast_math] (reassociation). *)
val is_vectorizable : ?fast_math:bool -> Core.op -> bool
