(** Parametric machine models standing in for the paper's two test
    platforms (Table I): an Intel Core i9-9900K (Coffee Lake) and an AMD
    Threadripper 2920X. Absolute constants are calibrated only loosely —
    the reproduction compares orderings and factors, not GFLOPS values —
    but the structure mirrors the real machines: frequency, issue widths
    for scalar vs. compiler-vectorized vs. hand-tuned-library code, cache
    geometry and miss latencies, memory bandwidth, and the
    dynamically-linked vendor-library call overhead the paper measures
    (§5.2's atax discussion). *)

type t = {
  name : string;
  freq_ghz : float;
  scalar_flops_per_cycle : float;
      (** dependency-chained scalar loop code (Clang -O3, not vectorized) *)
  vector_flops_per_cycle : float;
      (** auto-vectorized loop code (no register blocking or packing) *)
  l1_size : int;
  l2_size : int;
  l3_size : int;
  line : int;
  l1_ways : int;
  l2_ways : int;
  l3_ways : int;
  lat_l2 : float;  (** cycles charged per L1 miss hitting L2 *)
  lat_l3 : float;
  lat_mem : float;
  mlp : float;
      (** memory-level parallelism: how many misses overlap on average;
          the effective cost per miss is [lat / mlp] *)
  loop_overhead_cycles : float;  (** per loop iteration (branch + IV) *)
  mem_bw_gbs : float;
  blas_peak_gflops : float;
      (** single-core single-precision vendor-library peak (the MKL-DNN
          reference lines of Figure 9: 145.5 and 63.6) *)
  blas_ramp_flops : float;
      (** flop count at which the library reaches half its peak *)
  blas_call_overhead_s : float;
  blis_codegen_efficiency : float;
      (** [affine.matmul] OpenBLAS/BLIS-schedule codegen relative to the
          vendor peak (§5.1) *)
}

val intel_i9 : t
val amd_2920x : t

(** Both platforms, in the order of Figure 9's plots. *)
val platforms : t list

val fresh_hierarchy : t -> Cache.hierarchy

(** [seconds_of_cycles m c] *)
val seconds_of_cycles : t -> float -> float

(** Cycles to bring in one cache line at streaming (prefetched)
    bandwidth — what a unit-stride miss costs instead of the latency. *)
val stream_miss_cycles : t -> float
