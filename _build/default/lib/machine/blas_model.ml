open Machine_model

let roofline m ~flops ~bytes ~peak_gflops =
  let eff_peak = peak_gflops *. 1e9 *. (flops /. (flops +. m.blas_ramp_flops)) in
  Float.max (flops /. eff_peak) (bytes /. (m.mem_bw_gbs *. 1e9))

let gemm_seconds m ~m:mm ~n ~k =
  let flops = 2. *. float_of_int mm *. float_of_int n *. float_of_int k in
  let bytes = 4. *. float_of_int ((mm * k) + (k * n) + (2 * mm * n)) in
  m.blas_call_overhead_s +. roofline m ~flops ~bytes ~peak_gflops:m.blas_peak_gflops

let gemv_seconds m ~m:mm ~n =
  let flops = 2. *. float_of_int mm *. float_of_int n in
  let bytes = 4. *. float_of_int ((mm * n) + mm + mm + n) in
  m.blas_call_overhead_s +. roofline m ~flops ~bytes ~peak_gflops:m.blas_peak_gflops

let transpose_seconds m ~elems =
  (* Read + write; transposition halves effective bandwidth. *)
  let bytes = 2. *. 4. *. float_of_int elems in
  m.blas_call_overhead_s +. (bytes /. (0.5 *. m.mem_bw_gbs *. 1e9))

let copy_seconds m ~elems =
  let bytes = 2. *. 4. *. float_of_int elems in
  m.blas_call_overhead_s +. (bytes /. (m.mem_bw_gbs *. 1e9))

let conv2d_seconds m ~n ~c ~f ~oh ~ow ~kh ~kw =
  (* Implicit-GEMM formulation: M = f, N = n*oh*ow, K = c*kh*kw. *)
  let flops =
    2. *. float_of_int (n * f * oh * ow * c * kh * kw)
  in
  let bytes =
    4.
    *. float_of_int
         ((n * c * (oh + kh - 1) * (ow + kw - 1))
         + (f * c * kh * kw)
         + (2 * n * f * oh * ow))
  in
  m.blas_call_overhead_s +. roofline m ~flops ~bytes ~peak_gflops:m.blas_peak_gflops

let blis_codegen_gemm_seconds m ~m:mm ~n ~k =
  let flops = 2. *. float_of_int mm *. float_of_int n *. float_of_int k in
  let bytes = 4. *. float_of_int ((mm * k) + (k * n) + (2 * mm * n)) in
  roofline m ~flops ~bytes
    ~peak_gflops:(m.blis_codegen_efficiency *. m.blas_peak_gflops)
