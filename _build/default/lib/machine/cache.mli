(** Set-associative LRU cache simulator (single level) and a three-level
    hierarchy. The testbed substitute for the paper's Intel/AMD machines:
    the trace generator drives memory accesses through a hierarchy and
    the timing model charges miss latencies. *)

type t

(** [create ~size ~line ~ways] — sizes in bytes; [size] must be a
    multiple of [line * ways]. *)
val create : size:int -> line:int -> ways:int -> t

(** [access t addr] returns [true] on hit and updates LRU state. *)
val access : t -> int -> bool

val accesses : t -> int
val misses : t -> int
val reset : t -> unit

(** {2 Hierarchy} *)

type hierarchy

type level_stats = { l1_miss : int; l2_miss : int; l3_miss : int; total : int }

val create_hierarchy :
  l1:t -> l2:t -> l3:t -> hierarchy

(** [access_hierarchy h addr] probes L1, then L2, then L3 on misses;
    returns the innermost level that hit (1-4, 4 = memory). *)
val access_hierarchy : hierarchy -> int -> int

val hierarchy_stats : hierarchy -> level_stats
val reset_hierarchy : hierarchy -> unit
