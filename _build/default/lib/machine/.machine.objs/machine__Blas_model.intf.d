lib/machine/blas_model.mli: Machine_model
