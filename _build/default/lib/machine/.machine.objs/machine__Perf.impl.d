lib/machine/perf.ml: Affine Attr Blas Blas_model Core Float Ir Linalg List Machine_model Support Trace Typ
