lib/machine/machine_model.ml: Cache
