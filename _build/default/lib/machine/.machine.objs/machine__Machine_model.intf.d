lib/machine/machine_model.mli: Cache
