lib/machine/trace.mli: Cache Core Hashtbl Ir Machine_model
