lib/machine/trace.ml: Affine Affine_expr Affine_map Array Attr Cache Core Hashtbl Ir List Machine_model Std_dialect Support Typ
