lib/machine/cache.mli:
