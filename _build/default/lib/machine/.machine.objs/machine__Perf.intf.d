lib/machine/perf.mli: Core Ir Machine_model Trace
