lib/machine/blas_model.ml: Float Machine_model
