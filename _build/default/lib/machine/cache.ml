type t = {
  line : int;
  sets : int;
  ways : int;
  tags : int array;  (** sets * ways, -1 = invalid *)
  stamps : int array;
  mutable clock : int;
  mutable n_accesses : int;
  mutable n_misses : int;
}

let create ~size ~line ~ways =
  if size mod (line * ways) <> 0 then
    invalid_arg "Cache.create: size must be a multiple of line * ways";
  let sets = size / (line * ways) in
  {
    line;
    sets;
    ways;
    tags = Array.make (sets * ways) (-1);
    stamps = Array.make (sets * ways) 0;
    clock = 0;
    n_accesses = 0;
    n_misses = 0;
  }

let access t addr =
  let line_id = addr / t.line in
  let set = line_id mod t.sets in
  let base = set * t.ways in
  t.clock <- t.clock + 1;
  t.n_accesses <- t.n_accesses + 1;
  let hit = ref false in
  let victim = ref base in
  let oldest = ref max_int in
  (try
     for w = base to base + t.ways - 1 do
       if t.tags.(w) = line_id then begin
         t.stamps.(w) <- t.clock;
         hit := true;
         raise Exit
       end;
       if t.stamps.(w) < !oldest then begin
         oldest := t.stamps.(w);
         victim := w
       end
     done
   with Exit -> ());
  if not !hit then begin
    t.n_misses <- t.n_misses + 1;
    t.tags.(!victim) <- line_id;
    t.stamps.(!victim) <- t.clock
  end;
  !hit

let accesses t = t.n_accesses
let misses t = t.n_misses

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0;
  t.n_accesses <- 0;
  t.n_misses <- 0

type hierarchy = { l1 : t; l2 : t; l3 : t }

type level_stats = { l1_miss : int; l2_miss : int; l3_miss : int; total : int }

let create_hierarchy ~l1 ~l2 ~l3 = { l1; l2; l3 }

let access_hierarchy h addr =
  if access h.l1 addr then 1
  else if access h.l2 addr then 2
  else if access h.l3 addr then 3
  else 4

let hierarchy_stats h =
  {
    l1_miss = misses h.l1;
    l2_miss = misses h.l2;
    l3_miss = misses h.l3;
    total = accesses h.l1;
  }

let reset_hierarchy h =
  reset h.l1;
  reset h.l2;
  reset h.l3
