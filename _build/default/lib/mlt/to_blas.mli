(** The MLT-Blas second pass (§5.2): replace Linalg operations with calls
    to the vendor-optimized library. *)

open Ir

val patterns : unit -> Rewriter.pattern list

(** [run root] — returns the number of converted operations. Linalg ops
    with no library counterpart (e.g. [linalg.contract], which the TTGT
    tactics decompose before this pass) raise {!Support.Diag.Error}. *)
val run : Core.op -> int

val pass : Pass.t
