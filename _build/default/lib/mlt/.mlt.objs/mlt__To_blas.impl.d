lib/mlt/to_blas.ml: Attr Blas Core Ir Linalg Pass Rewriter Support
