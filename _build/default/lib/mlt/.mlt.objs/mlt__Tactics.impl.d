lib/mlt/tactics.ml: Affine Core Ir Linalg List Matchers Rewriter String Support Tdl Typ Workloads
