lib/mlt/matrix_chain.mli:
