lib/mlt/raise_chain.mli: Core Ir Pass
