lib/mlt/tactics.mli: Core Ir Rewriter Workloads
