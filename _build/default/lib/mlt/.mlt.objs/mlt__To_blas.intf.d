lib/mlt/to_blas.mli: Core Ir Pass Rewriter
