lib/mlt/pipeline.ml: Affine Core Ir List Machine Met Raise_chain Rewriter Support Tactics Tdl To_blas Transforms Unix Verifier
