lib/mlt/pipeline.mli: Core Ir Machine
