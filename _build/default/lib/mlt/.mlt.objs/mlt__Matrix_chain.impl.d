lib/mlt/matrix_chain.ml: Array List Printf
