lib/mlt/raise_chain.ml: Affine Array Attr Builder Core Hashtbl Ir Linalg List Matrix_chain Pass Std_dialect Support Transforms Typ
