type tree = Leaf of int | Node of tree * tree

let check dims =
  if Array.length dims < 3 then
    invalid_arg "Matrix_chain: need at least two matrices"

let rec bounds = function
  | Leaf i -> (i, i)
  | Node (l, r) ->
      let lo, _ = bounds l and _, hi = bounds r in
      (lo, hi)

let shape dims tree =
  let lo, hi = bounds tree in
  (dims.(lo), dims.(hi + 1))

let rec cost dims = function
  | Leaf _ -> 0.
  | Node (l, r) ->
      let m, k = shape dims l in
      let _, n = shape dims r in
      cost dims l +. cost dims r
      +. (float_of_int m *. float_of_int k *. float_of_int n)

let optimal dims =
  check dims;
  let n = Array.length dims - 1 in
  let table = Array.make_matrix n n (0., Leaf 0) in
  for i = 0 to n - 1 do
    table.(i).(i) <- (0., Leaf i)
  done;
  let d = Array.map float_of_int dims in
  for len = 2 to n do
    for i = 0 to n - len do
      let j = i + len - 1 in
      let best = ref infinity and best_tree = ref (Leaf i) in
      for k = i to j - 1 do
        let cl, tl = table.(i).(k) and cr, tr = table.(k + 1).(j) in
        let c = cl +. cr +. (d.(i) *. d.(k + 1) *. d.(j + 1)) in
        if c < !best then begin
          best := c;
          best_tree := Node (tl, tr)
        end
      done;
      table.(i).(j) <- (!best, !best_tree)
    done
  done;
  let c, t = table.(0).(n - 1) in
  (t, c)

let left_assoc dims =
  check dims;
  let n = Array.length dims - 1 in
  let tree = ref (Leaf 0) in
  for i = 1 to n - 1 do
    tree := Node (!tree, Leaf i)
  done;
  (!tree, cost dims !tree)

let brute_force dims =
  check dims;
  let n = Array.length dims - 1 in
  let rec go i j =
    if i = j then [ Leaf i ]
    else
      List.concat_map
        (fun k ->
          List.concat_map
            (fun l -> List.map (fun r -> Node (l, r)) (go (k + 1) j))
            (go i k))
        (List.init (j - i) (fun d -> i + d))
  in
  let trees = go 0 (n - 1) in
  List.fold_left
    (fun (bt, bc) t ->
      let c = cost dims t in
      if c < bc then (t, c) else (bt, bc))
    (List.hd trees, cost dims (List.hd trees))
    trees

let rec to_string = function
  | Leaf i -> Printf.sprintf "A%d" (i + 1)
  | Node (l, r) -> Printf.sprintf "(%sx%s)" (to_string l) (to_string r)
