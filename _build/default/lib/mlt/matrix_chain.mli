(** The matrix-chain ordering problem (§5.3): given matrices
    [A1 x A2 x ... x An] with [Ai] of size [p(i-1) x p(i)], find the
    parenthesization minimizing scalar multiplications (CLRS dynamic
    programming, the paper's [24]). *)

type tree = Leaf of int  (** 0-based matrix index *) | Node of tree * tree

(** [optimal dims] for [n+1] boundary dimensions returns the optimal tree
    and its scalar-multiplication count. Raises [Invalid_argument] when
    fewer than two matrices are described. *)
val optimal : int array -> tree * float

(** Left-associative parenthesization [((A1 A2) A3) ...] and its cost —
    the "initial parenthesization" (IP) of Table II. *)
val left_assoc : int array -> tree * float

(** [cost dims tree] — scalar multiplications of an arbitrary tree. *)
val cost : int array -> tree -> float

(** Exhaustive search over all parenthesizations (Catalan growth — tests
    only). *)
val brute_force : int array -> tree * float

(** Render as the paper's Table II notation, e.g.
    [(A1x(A2x(A3xA4)))]. *)
val to_string : tree -> string

(** [shape dims tree] — the [(rows, cols)] of the tree's product. *)
val shape : int array -> tree -> int * int
