(** End-to-end compilation pipelines for the five Figure-9 configurations
    plus the §5.1 affine-raising path, producing simulated performance on
    a machine model.

    Every pipeline starts from mini-C source, enters the IR through MET
    at the Affine level (with loop distribution), and ends in IR that
    {!Machine.Perf} can time: affine loops, library calls, or both.

    - [Clang_O3]      — the loops as written (general-purpose compiler).
    - [Pluto_default] — fusion [smartfuse] + tiling 32.
    - [Pluto_best]    — best of the tiling/fusion sweep on the model.
    - [Mlt_linalg]    — raise to Linalg, lower back through the default
                        (tiling) Linalg path.
    - [Mlt_blas]      — raise to Linalg, convert to vendor-library calls.
    - [Mlt_affine_blis] — §5.1: raise GEMM to [affine.matmul], lower via
                        the OpenBLAS/BLIS schedule model. *)

open Ir

type config =
  | Clang_O3
  | Pluto_default
  | Pluto_best
  | Mlt_linalg
  | Mlt_blas
  | Mlt_affine_blis

val config_name : config -> string

val all_figure9_configs : config list

(** [prepare config src] — parse, distribute, apply the configuration's
    transformations; returns the module (one function). The result always
    verifies. *)
val prepare : config -> string -> Core.op

(** [time config machine src] — simulated seconds and report for the
    single kernel in [src]. *)
val time : config -> Machine.Machine_model.t -> string -> Machine.Perf.report

(** [gflops config machine src ~flops] *)
val gflops :
  config -> Machine.Machine_model.t -> string -> flops:float -> float

(** {2 Compile-time measurement (§5.2 overhead experiment)}

    Wall-clock seconds to run the full lowering pipeline over the given
    sources, without ([`Baseline]) and with ([`With_mlt]) the raising
    passes; [`Match_only] runs just the tactic matching (the idiom
    discovery the paper contrasts with IDL's constraint solving). *)
val compile_time : [ `Baseline | `With_mlt | `Match_only ] -> string list -> float

(** {2 Figure 8: callsite detection} *)

(** [count_gemm_callsites ?delinearize src] — number of sites the GEMM
    tactic raises; with [delinearize] the optimistic delinearization pass
    (the paper's proposed fix for Darknet) runs first. *)
val count_gemm_callsites : ?delinearize:bool -> string -> int
