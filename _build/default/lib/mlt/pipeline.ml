open Ir
module T = Transforms
module M = Machine

type config =
  | Clang_O3
  | Pluto_default
  | Pluto_best
  | Mlt_linalg
  | Mlt_blas
  | Mlt_affine_blis

let config_name = function
  | Clang_O3 -> "clang-O3"
  | Pluto_default -> "pluto-default"
  | Pluto_best -> "pluto-best"
  | Mlt_linalg -> "mlt-linalg"
  | Mlt_blas -> "mlt-blas"
  | Mlt_affine_blis -> "mlt-affine-blis"

let all_figure9_configs =
  [ Clang_O3; Pluto_default; Pluto_best; Mlt_linalg; Mlt_blas ]

let sole_func m =
  match List.filter Core.is_func (Core.ops_of_block (Core.module_block m)) with
  | [ f ] -> f
  | fs ->
      Support.Diag.errorf "pipeline: expected one kernel, found %d"
        (List.length fs)

let translate src = Met.Emit_affine.translate src

(* The Linalg default path primarily performs tiling (§5.2, footnote 2). *)
let linalg_tile_size = 32

let prepare_module config m =
  let f = sole_func m in
  (match config with
  | Clang_O3 -> ()
  | Pluto_default -> T.Pluto.apply T.Pluto.default_config f
  | Pluto_best ->
      (* Resolved at timing (needs the machine model); structural prepare
         keeps the default. *)
      T.Pluto.apply T.Pluto.default_config f
  | Mlt_linalg ->
      ignore (T.Canonicalize.run f);
      ignore (Tactics.raise_to_linalg f);
      T.Lower_linalg.run_tiled ~size:linalg_tile_size f
  | Mlt_blas ->
      ignore (T.Canonicalize.run f);
      ignore (Tactics.raise_to_linalg f);
      ignore (Raise_chain.reorder f);
      ignore (To_blas.run f);
      (* Leftover fills have no library call; lower them to loops. *)
      T.Lower_linalg.run f
  | Mlt_affine_blis ->
      ignore (T.Canonicalize.run f);
      ignore (Tactics.raise_to_affine_matmul f));
  Verifier.verify m;
  m

let prepare config src = prepare_module config (translate src)

let max_trip_count f =
  List.fold_left
    (fun acc loop ->
      match Affine.Affine_ops.for_trip_count loop with
      | Some t -> max acc t
      | None -> acc)
    1
    (Affine.Loops.all_loops f)

let time config machine src =
  match config with
  | Pluto_best ->
      (* Score every sweep configuration on the machine model and keep
         the fastest — the model-driven stand-in for the paper's
         multi-day autotuning. *)
      let probe = translate src in
      let trips = max_trip_count (sole_func probe) in
      let candidates = T.Pluto.sweep_configs ~max_trip:trips in
      let best =
        List.fold_left
          (fun best cfg ->
            let m = translate src in
            let f = sole_func m in
            T.Pluto.apply cfg f;
            Verifier.verify m;
            let report = M.Perf.time_func machine f in
            match best with
            | Some (_, b) when b.M.Perf.seconds <= report.M.Perf.seconds ->
                best
            | _ -> Some (cfg, report))
          None candidates
      in
      (match best with
      | Some (_, report) -> report
      | None -> Support.Diag.errorf "pipeline: empty pluto sweep")
  | _ ->
      let m = prepare config src in
      M.Perf.time_func machine (sole_func m)

let gflops config machine src ~flops =
  let report = time config machine src in
  M.Perf.gflops ~flops report

let compile_time mode sources =
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun src ->
      let m = translate src in
      let f = sole_func m in
      match mode with
      | `Match_only -> ignore (Tactics.raise_to_linalg f)
      | `Baseline ->
          T.Lower_affine.run f;
          Verifier.verify m
      | `With_mlt ->
          ignore (T.Canonicalize.run f);
          ignore (Tactics.raise_to_linalg f);
          T.Lower_linalg.run f;
          (* Common progressive lowering to the SCF level. *)
          T.Lower_affine.run f;
          Verifier.verify m)
    sources;
  Unix.gettimeofday () -. t0

let count_gemm_callsites ?(delinearize = false) src =
  let m = translate src in
  if delinearize then
    Core.walk m (fun op ->
        if Core.is_func op then ignore (T.Delinearize.run op));
  let pats = Tdl.Backend.compile_tdl Tdl.Frontend.gemm_tdl in
  Rewriter.apply_greedily m pats
