(** Progressive raising, level two (§5.3): detecting chains of matrix
    multiplications at the Linalg level and re-parenthesizing them with
    the optimal order from {!Matrix_chain}.

    Buffer semantics note: Listing 9 chains [m_Op<MatmulOp>] through SSA
    use-def edges; on buffers the equivalent producer relation is the
    {e last writer} of a memref before its use, exposed here as
    {!last_writer} (and pluggable into {!Matchers.Op_match.matches}). *)

open Ir

(** [last_writer ~anchor v] scans backwards from [anchor] within its block
    for the latest operation writing buffer [v] ([linalg.fill],
    [linalg.matmul]'s output, [affine.store], ...). *)
val last_writer : anchor:Core.op -> Core.value -> Core.op option

type chain = {
  matmuls : Core.op list;  (** left-associative producers, in order *)
  inputs : Core.value list;  (** A1 ... An *)
  output : Core.value;
  temp_fills : Core.op list;  (** zero-fills of the intermediates *)
}

(** Chains of length >= 3 matrices found in a function (each matmul's
    intermediate must be a local, zero-filled, single-use buffer). *)
val detect : Core.op -> chain list

(** [reorder func] rewrites every detected chain whose optimal
    parenthesization beats the current one; dead intermediates are
    cleaned up. Returns the number of chains rewritten. *)
val reorder : Core.op -> int

val pass : Pass.t
