lib/blas/blas_ops.mli: Builder Core Ir
