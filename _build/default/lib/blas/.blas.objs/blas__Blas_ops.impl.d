lib/blas/blas_ops.ml: Array Attr Builder Core Dialect Ir List
