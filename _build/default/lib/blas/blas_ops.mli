(** The [blas] dialect: calls into the (modelled) vendor-optimized library.

    MLT-Blas replaces Linalg operations with these calls (§5.2); the machine
    model charges each one an analytical library time plus the constant
    dynamic-link overhead the paper measures (≈1.5 ms for atax). Semantics
    mirror the corresponding Linalg ops:

    - [sgemm A B C]: C += A * B (single precision)
    - [sgemv A x y]: y += A * x
    - [stranspose ~perm A B]
    - [sreshape_copy ~grouping A B] *)

open Ir

val register : unit -> unit

val sgemm : Builder.t -> Core.value -> Core.value -> Core.value -> Core.op
val sgemv : Builder.t -> Core.value -> Core.value -> Core.value -> Core.op

(** MKL-DNN-style convolution primitive: [sconv2d I W O]. *)
val sconv2d : Builder.t -> Core.value -> Core.value -> Core.value -> Core.op

val stranspose :
  Builder.t -> perm:int array -> Core.value -> Core.value -> Core.op

val sreshape_copy :
  Builder.t -> grouping:int list list -> Core.value -> Core.value -> Core.op

val is_blas : Core.op -> bool
