lib/ir/verifier.mli: Core
