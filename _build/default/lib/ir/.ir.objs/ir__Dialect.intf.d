lib/ir/dialect.mli: Core
