lib/ir/affine_map.ml: Affine_expr Array Format Fun List Printf
