lib/ir/affine_expr.ml: Array Format List Stdlib
