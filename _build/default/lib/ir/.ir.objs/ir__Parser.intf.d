lib/ir/parser.mli: Core
