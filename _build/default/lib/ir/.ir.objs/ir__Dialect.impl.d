lib/ir/dialect.ml: Core Hashtbl List String
