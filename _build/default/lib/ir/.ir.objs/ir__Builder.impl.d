lib/ir/builder.ml: Core
