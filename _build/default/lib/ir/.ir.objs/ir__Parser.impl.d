lib/ir/parser.ml: Affine_expr Affine_map Array Attr Builder Core Hashtbl List Printf String Support Typ Verifier
