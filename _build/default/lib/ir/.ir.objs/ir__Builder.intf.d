lib/ir/builder.mli: Attr Core Typ
