lib/ir/rewriter.ml: Array Builder Core List Support
