lib/ir/typ.mli: Format
