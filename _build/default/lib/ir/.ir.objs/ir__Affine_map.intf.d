lib/ir/affine_map.mli: Affine_expr Format
