lib/ir/attr.mli: Affine_map Format Typ
