lib/ir/verifier.ml: Array Core Dialect Format Hashtbl List Printer Support
