lib/ir/printer.mli: Core Format
