lib/ir/core.ml: Array Attr Hashtbl List Option Printf String Support Typ
