lib/ir/core.mli: Attr Typ
