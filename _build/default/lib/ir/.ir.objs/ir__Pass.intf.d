lib/ir/pass.mli: Core
