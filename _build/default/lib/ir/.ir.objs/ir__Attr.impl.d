lib/ir/attr.ml: Affine_map Format List Printf String Typ
