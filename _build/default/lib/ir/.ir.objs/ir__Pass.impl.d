lib/ir/pass.ml: Core List Support Unix Verifier
