lib/ir/printer.ml: Affine_expr Affine_map Array Attr Core Format Hashtbl List Printf String Typ
