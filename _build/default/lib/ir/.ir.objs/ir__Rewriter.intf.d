lib/ir/rewriter.mli: Builder Core
