type point = At_end of Core.block | Before of Core.op | After of Core.op

type t = { mutable point : point }

let create point = { point }
let at_end block = { point = At_end block }
let before op = { point = Before op }
let insertion_point t = t.point
let set_insertion_point t p = t.point <- p

let insert t op =
  (match t.point with
  | At_end block -> Core.append_op block op
  | Before anchor -> Core.insert_before ~anchor op
  | After anchor ->
      Core.insert_after ~anchor op;
      t.point <- After op);
  op

let build t ?operands ?result_types ?attrs ?regions name =
  insert t (Core.create_op ?operands ?result_types ?attrs ?regions name)

let nested _t op i = at_end (Core.single_block op i)
