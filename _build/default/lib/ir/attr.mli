(** Attributes attach compile-time information to operations. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Type of Typ.t
  | Ints of int list
  | Map of Affine_map.t
  | Grouping of int list list
      (** reshape dimension grouping, e.g. [{{0,1},2}] *)
  | List of t list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {2 Typed accessors} — raise [Invalid_argument] on kind mismatch. *)

val get_int : t -> int
val get_float : t -> float
val get_str : t -> string
val get_bool : t -> bool
val get_ints : t -> int list
val get_map : t -> Affine_map.t
val get_type : t -> Typ.t
val get_grouping : t -> int list list
val get_list : t -> t list
