type dim = Static of int | Dynamic

type t =
  | F32
  | F64
  | I1
  | I32
  | I64
  | Index
  | Mem_ref of dim list * t
  | Fun of t list * t list

let is_scalar = function
  | F32 | F64 | I1 | I32 | I64 | Index -> true
  | Mem_ref _ | Fun _ -> false

let is_float = function F32 | F64 -> true | _ -> false
let is_int = function I1 | I32 | I64 | Index -> true | _ -> false

let memref shape elem = Mem_ref (List.map (fun d -> Static d) shape, elem)

let memref_rank = function
  | Mem_ref (shape, _) -> List.length shape
  | _ -> invalid_arg "Typ.memref_rank: not a memref"

let memref_elem = function
  | Mem_ref (_, e) -> e
  | _ -> invalid_arg "Typ.memref_elem: not a memref"

let memref_shape = function
  | Mem_ref (shape, _) -> shape
  | _ -> invalid_arg "Typ.memref_shape: not a memref"

let static_shape = function
  | Mem_ref (shape, _) ->
      List.fold_right
        (fun d acc ->
          match (d, acc) with
          | Static n, Some tl -> Some (n :: tl)
          | _ -> None)
        shape (Some [])
  | _ -> None

let num_elements t =
  Option.map (List.fold_left ( * ) 1) (static_shape t)

let equal (a : t) (b : t) = a = b

let rec pp fmt = function
  | F32 -> Format.fprintf fmt "f32"
  | F64 -> Format.fprintf fmt "f64"
  | I1 -> Format.fprintf fmt "i1"
  | I32 -> Format.fprintf fmt "i32"
  | I64 -> Format.fprintf fmt "i64"
  | Index -> Format.fprintf fmt "index"
  | Mem_ref (shape, elem) ->
      Format.fprintf fmt "memref<";
      List.iter
        (fun d ->
          (match d with
          | Static n -> Format.fprintf fmt "%d" n
          | Dynamic -> Format.fprintf fmt "?");
          Format.fprintf fmt "x")
        shape;
      Format.fprintf fmt "%a>" pp elem
  | Fun (args, results) ->
      let pp_list fmt ts =
        Format.pp_print_list
          ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
          pp fmt ts
      in
      Format.fprintf fmt "(%a) -> (%a)" pp_list args pp_list results

let to_string t = Format.asprintf "%a" pp t
