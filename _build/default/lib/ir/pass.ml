type t = { name : string; run : Core.op -> unit }

let make ~name run = { name; run }

type timing = { pass_name : string; seconds : float }

type manager = {
  mutable passes : t list;
  mutable recorded : timing list;  (** reverse order *)
  verify_each : bool;
}

let create_manager ?(verify_each = false) () =
  { passes = []; recorded = []; verify_each }

let add m p = m.passes <- m.passes @ [ p ]
let add_all m ps = List.iter (add m) ps

let run m root =
  List.iter
    (fun p ->
      let t0 = Unix.gettimeofday () in
      p.run root;
      let dt = Unix.gettimeofday () -. t0 in
      m.recorded <- { pass_name = p.name; seconds = dt } :: m.recorded;
      if m.verify_each then
        match Verifier.verify_result root with
        | Ok () -> ()
        | Error msg ->
            Support.Diag.errorf "after pass '%s': %s" p.name msg)
    m.passes

let timings m = List.rev m.recorded

let total_seconds m =
  List.fold_left (fun acc t -> acc +. t.seconds) 0. (timings m)

let clear_timings m = m.recorded <- []
