type op_def = {
  od_name : string;
  od_verify : Core.op -> unit;
  od_terminator : bool;
  od_commutative : bool;
  od_summary : string;
}

let no_verify (_ : Core.op) = ()

let def ?(verify = no_verify) ?(terminator = false) ?(commutative = false)
    ?(summary = "") name =
  {
    od_name = name;
    od_verify = verify;
    od_terminator = terminator;
    od_commutative = commutative;
    od_summary = summary;
  }

let registry : (string, op_def) Hashtbl.t = Hashtbl.create 64

let register d = Hashtbl.replace registry d.od_name d
let register_all ds = List.iter register ds
let lookup name = Hashtbl.find_opt registry name
let is_registered name = Hashtbl.mem registry name

let is_terminator (op : Core.op) =
  match lookup op.o_name with Some d -> d.od_terminator | None -> false

let is_commutative (op : Core.op) =
  match lookup op.o_name with Some d -> d.od_commutative | None -> false

let registered_ops () =
  Hashtbl.fold (fun name _ acc -> name :: acc) registry []
  |> List.sort String.compare

let dialect_of name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name
