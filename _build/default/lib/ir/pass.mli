(** Passes and a timing pass manager.

    The pass manager records wall-clock time per pass; the §5.2 compile-time
    overhead experiment reads these timings to compare pipelines with and
    without the raising passes. *)

type t = { name : string; run : Core.op -> unit }

val make : name:string -> (Core.op -> unit) -> t

type timing = { pass_name : string; seconds : float }

type manager

val create_manager : ?verify_each:bool -> unit -> manager

val add : manager -> t -> unit
val add_all : manager -> t list -> unit

(** [run m root] executes the pipeline in order; with [verify_each] the
    verifier runs after every pass and failures name the culprit pass. *)
val run : manager -> Core.op -> unit

val timings : manager -> timing list

(** Total seconds across all recorded pass executions. *)
val total_seconds : manager -> float

val clear_timings : manager -> unit
