(** Dialect registry: per-operation verification and metadata.

    Dialect libraries register their operation definitions here (explicitly,
    via their [register ()] entry points). The {!Verifier} consults the
    registry; unregistered operations only get generic structural checks. *)

type op_def = {
  od_name : string;  (** fully qualified, e.g. ["linalg.matmul"] *)
  od_verify : Core.op -> unit;  (** raise {!Support.Diag.Error} on failure *)
  od_terminator : bool;
  od_commutative : bool;  (** operand order is semantically irrelevant *)
  od_summary : string;
}

(** [no_verify] is a verifier that accepts anything. *)
val no_verify : Core.op -> unit

val def :
  ?verify:(Core.op -> unit) ->
  ?terminator:bool ->
  ?commutative:bool ->
  ?summary:string ->
  string ->
  op_def

(** [register d] installs (or replaces) the definition. *)
val register : op_def -> unit

val register_all : op_def list -> unit
val lookup : string -> op_def option
val is_registered : string -> bool
val is_terminator : Core.op -> bool
val is_commutative : Core.op -> bool

(** All registered op names, sorted — used by documentation and tests. *)
val registered_ops : unit -> string list

(** [dialect_of "affine.for"] is ["affine"]. *)
val dialect_of : string -> string
