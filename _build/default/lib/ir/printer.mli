(** Textual IR output, in an MLIR-flavoured concrete syntax.

    Operations with well-known names (func, affine, scf, arith, memref,
    linalg, blas dialects) print in a pretty custom form; anything else
    falls back to the generic
    [%r = "name"(%operands) {attrs} : (operand types) -> (result types)]
    form. {!Parser} accepts exactly what this module prints, giving a
    round-trip property that the tests enforce. *)

(** [pp_op fmt op] prints a whole operation tree (typically a module or a
    function) followed by a newline for nested ops. *)
val pp_op : Format.formatter -> Core.op -> unit

val op_to_string : Core.op -> string

(** [debug_value v] renders a value for diagnostics (hint + internal id);
    names are not the printer's stable SSA names. *)
val debug_value : Core.value -> string
