(** Structural IR verification.

    Checks, for an operation tree (usually a module):
    - every operand is defined before use (lexical dominance within the
      single-block structured-control-flow subset this IR supports);
    - region-carrying ops end their blocks with the right terminator
      (per the {!Dialect} registry);
    - registered per-op verifiers pass.

    Raises {!Support.Diag.Error} with a message naming the offending op. *)

val verify : Core.op -> unit

(** [verify_result op] is the [Result] form used by tests. *)
val verify_result : Core.op -> (unit, string) result
