(** Parser for the textual IR syntax emitted by {!Printer}.

    Accepts exactly the printer's output (custom forms for the func,
    affine, scf, arith, memref, linalg and blas dialects plus the generic
    ["dialect.op"(...)] form without regions), giving the round-trip
    property [parse (print ir) ≡ ir] that the tests enforce and letting
    [mlt-opt] consume [.mlir]-style files. *)

(** [parse_module ?file src] — expects a top-level [builtin.module].
    Raises {!Support.Diag.Error} on syntax errors. The result is
    verified. *)
val parse_module : ?file:string -> string -> Core.op

(** [parse_func ?file src] — a bare [func.func]. *)
val parse_func : ?file:string -> string -> Core.op
