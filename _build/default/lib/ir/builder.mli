(** Insertion-point-based IR construction, in the style of MLIR's OpBuilder.

    A builder owns a mutable insertion point; [insert] places a detached
    operation there. Dialect libraries provide typed helpers layered on
    top of [insert] (e.g. [Affine_dialect.For.build]). *)

type point =
  | At_end of Core.block
  | Before of Core.op
  | After of Core.op  (** subsequent inserts keep appending after *)

type t

val create : point -> t
val at_end : Core.block -> t
val before : Core.op -> t
val insertion_point : t -> point
val set_insertion_point : t -> point -> unit

(** [insert b op] attaches [op] at the insertion point and returns it. *)
val insert : t -> Core.op -> Core.op

(** [build b name ...] creates and inserts in one step. *)
val build :
  t ->
  ?operands:Core.value list ->
  ?result_types:Typ.t list ->
  ?attrs:(string * Attr.t) list ->
  ?regions:Core.region list ->
  string ->
  Core.op

(** [nested b op region_index] is a builder appending into the sole block of
    the given region of [op]. *)
val nested : t -> Core.op -> int -> t
