type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Type of Typ.t
  | Ints of int list
  | Map of Affine_map.t
  | Grouping of int list list
  | List of t list

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Str x, Str y -> String.equal x y
  | Type x, Type y -> Typ.equal x y
  | Ints x, Ints y -> x = y
  | Map x, Map y -> Affine_map.equal x y
  | Grouping x, Grouping y -> x = y
  | List x, List y -> ( try List.for_all2 equal x y with _ -> false)
  | _ -> false

let rec pp fmt = function
  | Unit -> Format.fprintf fmt "unit"
  | Bool b -> Format.fprintf fmt "%b" b
  | Int i -> Format.fprintf fmt "%d" i
  | Float f -> Format.fprintf fmt "%h" f
  | Str s -> Format.fprintf fmt "%S" s
  | Type t -> Typ.pp fmt t
  | Ints is ->
      Format.fprintf fmt "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
           Format.pp_print_int)
        is
  | Map m -> Format.fprintf fmt "affine_map<%a>" Affine_map.pp m
  | Grouping g ->
      let pp_group fmt = function
        | [ d ] -> Format.fprintf fmt "%d" d
        | ds ->
            Format.fprintf fmt "{%a}"
              (Format.pp_print_list
                 ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
                 Format.pp_print_int)
              ds
      in
      Format.fprintf fmt "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
           pp_group)
        g
  | List l ->
      Format.fprintf fmt "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
           pp)
        l

let to_string t = Format.asprintf "%a" pp t

let kind_error want got =
  invalid_arg (Printf.sprintf "Attr: expected %s, got %s" want (to_string got))

let get_int = function Int i -> i | a -> kind_error "int" a
let get_float = function Float f -> f | a -> kind_error "float" a
let get_str = function Str s -> s | a -> kind_error "string" a
let get_bool = function Bool b -> b | a -> kind_error "bool" a
let get_ints = function Ints is -> is | a -> kind_error "ints" a
let get_map = function Map m -> m | a -> kind_error "affine map" a
let get_type = function Type t -> t | a -> kind_error "type" a
let get_grouping = function Grouping g -> g | a -> kind_error "grouping" a
let get_list = function List l -> l | a -> kind_error "list" a
