(* Tests for the executable BLIS-schedule lowering of affine.matmul. *)

open Ir
module T = Transforms
module W = Workloads.Polybench

let count_ops m name =
  let c = ref 0 in
  Core.walk m (fun op -> if String.equal op.Core.o_name name then incr c);
  !c

let raise_then_blis ?blocking src =
  let m = Met.Emit_affine.translate src in
  ignore (Mlt.Tactics.raise_to_affine_matmul m);
  T.Blis_schedule.run ?blocking m;
  Verifier.verify m;
  m

let test_structure () =
  let m =
    raise_then_blis
      ~blocking:{ T.Blis_schedule.mc = 4; nc = 8; kc = 4 }
      (W.mm ~ni:16 ~nj:16 ~nk:16 ())
  in
  Alcotest.(check int) "no affine.matmul left" 0 (count_ops m "affine.matmul");
  Alcotest.(check int) "two packing buffers" 2 (count_ops m "memref.alloc");
  (* jc, pc, ic cache loops + 2x2 packing + 3 macro = 10 loops *)
  Alcotest.(check int) "ten loops" 10 (count_ops m "affine.for")

let test_semantics_divisible () =
  let src = W.mm ~ni:16 ~nj:16 ~nk:16 () in
  let reference = Met.Emit_affine.translate src in
  let m =
    raise_then_blis ~blocking:{ T.Blis_schedule.mc = 4; nc = 8; kc = 4 } src
  in
  Alcotest.(check bool) "equivalent" true
    (Interp.Eval.equivalent reference m "mm" ~seed:89)

let test_semantics_edge_tiles () =
  (* 13 x 11 x 17 with blocks 4/8/4: every dimension has edge tiles. *)
  let src = W.mm ~ni:13 ~nj:11 ~nk:17 () in
  let reference = Met.Emit_affine.translate src in
  let m =
    raise_then_blis ~blocking:{ T.Blis_schedule.mc = 4; nc = 8; kc = 4 } src
  in
  Alcotest.(check bool) "equivalent with edge tiles" true
    (Interp.Eval.equivalent reference m "mm" ~seed:97)

let test_semantics_blocks_larger_than_problem () =
  let src = W.mm ~ni:6 ~nj:6 ~nk:6 () in
  let reference = Met.Emit_affine.translate src in
  let m = raise_then_blis src in
  (* default blocking far exceeds the problem *)
  Alcotest.(check bool) "equivalent" true
    (Interp.Eval.equivalent reference m "mm" ~seed:101)

let test_packed_locality_beats_naive () =
  (* The point of the schedule: on the machine model, the packed version
     beats the naive loops once the problem exceeds the cache. *)
  let n = 128 in
  let src = W.mm ~ni:n ~nj:n ~nk:n () in
  let machine = Machine.Machine_model.amd_2920x in
  let naive =
    Option.get (Core.find_func (Met.Emit_affine.translate src) "mm")
  in
  let blis_m =
    raise_then_blis ~blocking:{ T.Blis_schedule.mc = 32; nc = 64; kc = 32 } src
  in
  let blis = Option.get (Core.find_func blis_m "mm") in
  let t_naive = (Machine.Perf.time_func machine naive).Machine.Perf.seconds in
  let t_blis = (Machine.Perf.time_func machine blis).Machine.Perf.seconds in
  Alcotest.(check bool)
    (Printf.sprintf "blis (%.2e) < naive (%.2e)" t_blis t_naive)
    true (t_blis < t_naive)

let suite =
  [
    Alcotest.test_case "schedule structure" `Quick test_structure;
    Alcotest.test_case "semantics (divisible)" `Quick test_semantics_divisible;
    Alcotest.test_case "semantics (edge tiles)" `Quick
      test_semantics_edge_tiles;
    Alcotest.test_case "semantics (oversized blocks)" `Quick
      test_semantics_blocks_larger_than_problem;
    Alcotest.test_case "packed locality beats naive" `Quick
      test_packed_locality_beats_naive;
  ]
