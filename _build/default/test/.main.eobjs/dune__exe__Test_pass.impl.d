test/test_pass.ml: Affine Affine_map Alcotest Astring_contains Blas Builder Core Dialect Interp Ir Linalg List Met Mlt Option Pass Std_dialect Support Transforms Workloads
