test/test_raise_scf.ml: Affine Affine_map Alcotest Builder Core Interp Ir List Met Mlt Rewriter Std_dialect String Tdl Transforms Typ Verifier Workloads
