test/main.mli:
