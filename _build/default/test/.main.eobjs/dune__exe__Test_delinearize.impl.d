test/test_delinearize.ml: Alcotest Core Interp Ir List Met Mlt Option Rewriter String Tdl Transforms Typ Verifier Workloads
