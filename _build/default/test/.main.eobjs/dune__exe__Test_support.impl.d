test/test_support.ml: Alcotest Ir Support Workloads
