test/test_affine_expr.ml: Alcotest Array Gen Ir QCheck QCheck_alcotest
