test/test_ir_core.ml: Affine Affine_map Alcotest Array Astring_contains Builder Core Hashtbl Ir List Printer Std_dialect Typ Verifier
