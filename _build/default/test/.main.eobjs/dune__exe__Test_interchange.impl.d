test/test_interchange.ml: Affine Alcotest Core Interp Ir List Machine Met Option Transforms Verifier Workloads
