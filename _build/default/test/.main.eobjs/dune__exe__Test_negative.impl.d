test/test_negative.ml: Alcotest Core Interp Ir List Met Mlt String Verifier Workloads
