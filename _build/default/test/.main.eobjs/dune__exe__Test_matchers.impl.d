test/test_matchers.ml: Affine Alcotest Builder Core Ir List Matchers Met Option Std_dialect Workloads
