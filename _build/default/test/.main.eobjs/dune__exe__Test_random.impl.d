test/test_random.ml: Affine_expr Affine_map Array Core Fun Gen Interp Ir List Met Mlt Option Parser Printer Printf QCheck QCheck_alcotest Rewriter String Transforms Verifier Workloads
