test/test_mlt.ml: Alcotest Array Core Fun Gen Interp Ir Linalg List Matchers Met Mlt Option QCheck QCheck_alcotest Rewriter String Transforms Verifier Workloads
