test/test_transforms.ml: Affine Alcotest Builder Core Interp Ir List Met Rewriter Std_dialect String Tdl Transforms Typ Verifier Workloads
