test/test_tdl.ml: Alcotest Backend Frontend Interp Ir List Met String Support Tdl Tdl_ast Tdl_parser Tds Workloads
