test/test_tc_frontend.ml: Alcotest Core Interp Ir List Met Mlt Option String Support Tdl Typ Workloads
