test/test_interp.ml: Alcotest Array Interp Ir List Met QCheck QCheck_alcotest Workloads
