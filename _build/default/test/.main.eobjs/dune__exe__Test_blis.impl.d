test/test_blis.ml: Alcotest Core Interp Ir Machine Met Mlt Option Printf String Transforms Verifier Workloads
