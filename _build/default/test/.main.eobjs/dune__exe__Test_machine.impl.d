test/test_machine.ml: Affine Alcotest Core Ir List Machine Met Mlt Option Printf Transforms Workloads
