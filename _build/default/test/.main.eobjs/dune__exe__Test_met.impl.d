test/test_met.ml: Affine Alcotest C_ast C_parser Distribute Emit_affine Format Ir List Met Option Std_dialect Support Workloads
