test/test_misc.ml: Affine Alcotest Astring_contains Core Interp Ir List Machine Met Mlt Option Parser Printer Rewriter String Support Transforms Verifier Workloads
