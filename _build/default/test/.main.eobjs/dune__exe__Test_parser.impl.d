test/test_parser.ml: Affine_map Alcotest Array Builder Core Interp Ir Linalg List Met Mlt Option Parser Printer Support Transforms Typ Workloads
