test/test_unroll.ml: Alcotest Core Interp Ir Met Mlt QCheck QCheck_alcotest String Transforms Verifier Workloads
