(* Tests for the vectorizing loop interchange (Pluto-best's fast-math
   transformation). *)

open Ir
module T = Transforms
module W = Workloads.Polybench

let translate = Met.Emit_affine.translate

let innermost_of f =
  let loops =
    Affine.Loops.perfect_nest (List.hd (Affine.Loops.top_level_loops f))
  in
  List.nth loops (List.length loops - 1)

let test_gemm_rotation () =
  let m = translate (W.mm ~ni:8 ~nj:8 ~nk:8 ()) in
  let f = Option.get (Core.find_func m "mm") in
  Alcotest.(check bool) "k-innermost not vectorizable" false
    (Machine.Trace.is_vectorizable (innermost_of f));
  let n = T.Interchange.vectorize_func f in
  Alcotest.(check int) "one nest rotated" 1 n;
  Verifier.verify m;
  Alcotest.(check bool) "now vectorizable" true
    (Machine.Trace.is_vectorizable (innermost_of f))

let test_rotation_preserves_semantics () =
  (* Reductions reassociate: allow the interpreter's default epsilon. *)
  let src = W.mm ~ni:9 ~nj:7 ~nk:11 () in
  let reference = translate src in
  let m = translate src in
  ignore (T.Interchange.vectorize_func m);
  Alcotest.(check bool) "equivalent modulo reassociation" true
    (Interp.Eval.equivalent reference m "mm" ~seed:19)

let test_already_vectorizable_untouched () =
  (* y[j] += A[i][j] * x[i] with j innermost: store varies with j. *)
  let src =
    "void f(float A[6][8], float x[6], float y[8]) { for (int i = 0; i < \
     6; ++i) for (int j = 0; j < 8; ++j) y[j] += A[i][j] * x[i]; }"
  in
  let m = translate src in
  Alcotest.(check int) "no rotation" 0
    (T.Interchange.vectorize_func (Option.get (Core.find_func m "f")))

let test_non_reduction_body_untouched () =
  (* x[i] = x[i + 1] style dependences are not the reduction form: the
     legality check must refuse to permute. *)
  let src =
    "void f(float A[8][9]) { for (int i = 0; i < 8; ++i) for (int j = 0; j \
     < 8; ++j) A[i][j] = A[i][j + 1] + 1.0; }"
  in
  let m = translate src in
  let f = Option.get (Core.find_func m "f") in
  Alcotest.(check bool) "body not permutable" false
    (T.Interchange.permutable_body (Affine.Affine_ops.for_body (innermost_of f)));
  Alcotest.(check int) "no rotation" 0 (T.Interchange.vectorize_func f)

let test_permutable_body_recognizes_contraction () =
  let m = translate (W.mm ~ni:4 ~nj:4 ~nk:4 ()) in
  let f = Option.get (Core.find_func m "mm") in
  Alcotest.(check bool) "gemm body permutable" true
    (T.Interchange.permutable_body (Affine.Affine_ops.for_body (innermost_of f)))

let test_all_kernels_survive_interchange () =
  List.iter
    (fun (name, src) ->
      let reference = translate src in
      let m = translate src in
      Core.walk m (fun op ->
          if Core.is_func op then ignore (T.Interchange.vectorize_func op));
      Verifier.verify m;
      let fname =
        (List.hd (Met.C_parser.parse_program src)).Met.C_ast.k_name
      in
      if not (Interp.Eval.equivalent reference m fname ~seed:29) then
        Alcotest.failf "%s: interchange changed semantics" name)
    (W.tiny_suite ())

let test_fast_math_gates_reduction_vectorization () =
  (* tmp[i] += A[i][j] * x[j], j innermost: reduction. *)
  let src =
    "void f(float A[6][8], float x[8], float tmp[6]) { for (int i = 0; i < \
     6; ++i) for (int j = 0; j < 8; ++j) tmp[i] += A[i][j] * x[j]; }"
  in
  let m = translate src in
  let f = Option.get (Core.find_func m "f") in
  let inner = innermost_of f in
  Alcotest.(check bool) "scalar without fast-math" false
    (Machine.Trace.is_vectorizable inner);
  Alcotest.(check bool) "vector with fast-math" true
    (Machine.Trace.is_vectorizable ~fast_math:true inner)

let suite =
  [
    Alcotest.test_case "gemm rotation" `Quick test_gemm_rotation;
    Alcotest.test_case "rotation preserves semantics" `Quick
      test_rotation_preserves_semantics;
    Alcotest.test_case "already-vectorizable untouched" `Quick
      test_already_vectorizable_untouched;
    Alcotest.test_case "non-reduction body untouched" `Quick
      test_non_reduction_body_untouched;
    Alcotest.test_case "permutable body recognition" `Quick
      test_permutable_body_recognizes_contraction;
    Alcotest.test_case "all kernels survive interchange" `Quick
      test_all_kernels_survive_interchange;
    Alcotest.test_case "fast-math gates reduction vectorization" `Quick
      test_fast_math_gates_reduction_vectorization;
  ]
