(* Tests for the Teckyl-style TC entry point: a high-level Einstein
   statement becomes Linalg directly, and the result agrees with the same
   computation entered through MET + raising. *)

open Ir

let count_ops m name =
  let c = ref 0 in
  Core.walk m (fun op -> if String.equal op.Core.o_name name then incr c);
  !c

let test_tc_gemm () =
  let m =
    Tdl.Tc_frontend.module_of ~name:"mm"
      ~sizes:[ ("i", 6); ("j", 7); ("k", 8) ]
      "C(i,j) += A(i,k) * B(k,j)"
  in
  Alcotest.(check int) "one matmul" 1 (count_ops m "linalg.matmul");
  (* Argument shapes derive from index extents: A 6x8, B 8x7, C 6x7. *)
  let f = Option.get (Core.find_func m "mm") in
  let shapes =
    List.map
      (fun (v : Core.value) -> Option.get (Typ.static_shape v.v_typ))
      (Core.func_args f)
  in
  Alcotest.(check (list (list int))) "shapes"
    [ [ 6; 8 ]; [ 8; 7 ]; [ 6; 7 ] ]
    shapes

let test_tc_agrees_with_met_entry () =
  (* Same function, entered at the top (TC -> Linalg) and at the bottom
     (C -> affine -> raised to Linalg): interpreter-identical. *)
  let n = 6 in
  let top =
    Tdl.Tc_frontend.module_of ~name:"mm"
      ~sizes:[ ("i", n); ("j", n); ("k", n) ]
      "C(i,j) += A(i,k) * B(k,j)"
  in
  let bottom = Met.Emit_affine.translate (Workloads.Polybench.mm ~ni:n ~nj:n ~nk:n ()) in
  ignore (Mlt.Tactics.raise_to_linalg bottom);
  Alcotest.(check bool) "same semantics from both entries" true
    (Interp.Eval.equivalent top bottom "mm" ~seed:103)

let test_tc_contraction_ttgt () =
  let m =
    Tdl.Tc_frontend.module_of ~name:"tc"
      ~sizes:[ ("a", 4); ("b", 5); ("c", 3); ("d", 6) ]
      "C(a,b,c) += A(a,c,d) * B(d,b)"
  in
  Alcotest.(check bool) "has transposes (TTGT)" true
    (count_ops m "linalg.transpose" > 0);
  Alcotest.(check int) "one matmul" 1 (count_ops m "linalg.matmul");
  (* Lower and run: against the direct contraction kernel. *)
  let spec = Workloads.Contraction_spec.parse "abc-acd-db" in
  let sizes = [ ('a', 4); ('b', 5); ('c', 3); ('d', 6) ] in
  let loops =
    Met.Emit_affine.translate
      (Workloads.Contraction_spec.c_source spec ~sizes ~init:false
         ~name:"tc" ())
  in
  Alcotest.(check bool) "equivalent" true
    (Interp.Eval.equivalent m loops "tc" ~seed:107)

let test_tc_conv_window_shapes () =
  let m =
    Tdl.Tc_frontend.module_of ~name:"conv"
      ~sizes:
        [ ("n", 1); ("f", 2); ("x", 6); ("y", 6); ("c", 2); ("r", 3); ("s", 3) ]
      "O(n,f,x,y) += I(n,c,x+r,y+s) * W(f,c,r,s)"
  in
  Alcotest.(check int) "conv op" 1 (count_ops m "linalg.conv2d_nchw");
  let f = Option.get (Core.find_func m "conv") in
  (* I gets the valid-convolution input extent x + r - 1 = 8. *)
  let i_shape =
    Option.get (Typ.static_shape (List.hd (Core.func_args f)).Core.v_typ)
  in
  Alcotest.(check (list int)) "input window shape" [ 1; 2; 8; 8 ] i_shape

let test_tc_errors () =
  let expect_fail sizes stmt =
    match
      Support.Diag.wrap (fun () ->
          Tdl.Tc_frontend.func ~name:"f" ~sizes stmt)
    with
    | Ok _ -> Alcotest.failf "expected TC error for %S" stmt
    | Error _ -> ()
  in
  expect_fail [ ("i", 4) ] "C(i) = A(i)";
  expect_fail [ ("i", 4) ] "C(i,j) += A(i,k) * B(k,j)";
  expect_fail [ ("i", 4); ("k", 4) ] "C(i) += A(i,k) * B(i,k)"

let suite =
  [
    Alcotest.test_case "tc gemm entry" `Quick test_tc_gemm;
    Alcotest.test_case "tc entry = met entry + raising" `Quick
      test_tc_agrees_with_met_entry;
    Alcotest.test_case "tc contraction via TTGT" `Quick
      test_tc_contraction_ttgt;
    Alcotest.test_case "tc conv window shapes" `Quick
      test_tc_conv_window_shapes;
    Alcotest.test_case "tc errors" `Quick test_tc_errors;
  ]
