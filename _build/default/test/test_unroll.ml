(* Tests for loop unrolling. *)

open Ir
module T = Transforms
module W = Workloads.Polybench

let count_ops m name =
  let c = ref 0 in
  Core.walk m (fun op -> if String.equal op.Core.o_name name then incr c);
  !c

let test_structure_divisible () =
  let m = Met.Emit_affine.translate (W.mm ~ni:8 ~nj:8 ~nk:8 ()) in
  let n = T.Loop_unroll.unroll_innermost m ~factor:4 in
  Verifier.verify m;
  Alcotest.(check int) "one innermost loop unrolled" 1 n;
  (* Divisible: no remainder loop; 4 MACs in the body. *)
  Alcotest.(check int) "still three loops" 3 (count_ops m "affine.for");
  Alcotest.(check int) "four multiplications" 4 (count_ops m "arith.mulf")

let test_structure_remainder () =
  let m = Met.Emit_affine.translate (W.mm ~ni:8 ~nj:8 ~nk:10 ()) in
  ignore (T.Loop_unroll.unroll_innermost m ~factor:4);
  Verifier.verify m;
  (* 10 = 2*4 + 2: a remainder loop appears. *)
  Alcotest.(check int) "four loops" 4 (count_ops m "affine.for")

let prop_unroll_preserves_semantics =
  QCheck.Test.make ~name:"unrolling preserves semantics" ~count:40
    QCheck.(pair (int_range 2 7) (triple (int_range 2 11) (int_range 2 11) (int_range 2 11)))
    (fun (factor, (ni, nj, nk)) ->
      let src = W.gemm ~ni ~nj ~nk () in
      let reference = Met.Emit_affine.translate src in
      let m = Met.Emit_affine.translate src in
      ignore (T.Loop_unroll.unroll_innermost m ~factor);
      Verifier.verify m;
      Interp.Eval.equivalent reference m "gemm" ~seed:137)

let test_unroll_then_raise_fails_gracefully () =
  (* Unrolled bodies no longer match the single-statement contraction
     pattern — the tactic must simply not fire (no crash, no bad raise). *)
  let m = Met.Emit_affine.translate (W.mm ~ni:8 ~nj:8 ~nk:8 ()) in
  ignore (T.Loop_unroll.unroll_innermost m ~factor:2);
  Alcotest.(check int) "no raise on unrolled body" 0
    (Mlt.Tactics.raise_to_linalg m)

let test_no_op_cases () =
  let m = Met.Emit_affine.translate (W.mm ~ni:4 ~nj:4 ~nk:2 ()) in
  (* trip 2 < factor 4 on the innermost loop *)
  Alcotest.(check int) "too short" 0 (T.Loop_unroll.unroll_innermost m ~factor:4);
  Alcotest.(check int) "factor 1 refused" 0
    (T.Loop_unroll.unroll_innermost m ~factor:1)

let suite =
  [
    Alcotest.test_case "structure (divisible)" `Quick test_structure_divisible;
    Alcotest.test_case "structure (remainder loop)" `Quick
      test_structure_remainder;
    QCheck_alcotest.to_alcotest prop_unroll_preserves_semantics;
    Alcotest.test_case "unrolled bodies are not raised" `Quick
      test_unroll_then_raise_fails_gracefully;
    Alcotest.test_case "no-op cases" `Quick test_no_op_cases;
  ]
