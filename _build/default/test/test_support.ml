(* Tests for the support utilities and small IR helpers. *)

let test_loc () =
  let l = Support.Loc.make ~file:"x.c" ~line:3 ~col:7 in
  Alcotest.(check string) "render" "x.c:3:7" (Support.Loc.to_string l);
  Alcotest.(check string) "unknown" "<unknown>"
    (Support.Loc.to_string Support.Loc.unknown)

let test_diag () =
  (match Support.Diag.wrap (fun () -> 42) with
  | Ok v -> Alcotest.(check int) "ok passes through" 42 v
  | Error _ -> Alcotest.fail "unexpected error");
  (match
     Support.Diag.wrap (fun () -> Support.Diag.errorf "bad %s %d" "thing" 7)
   with
  | Ok _ -> Alcotest.fail "expected error"
  | Error msg -> Alcotest.(check string) "formatted" "bad thing 7" msg);
  let loc = Support.Loc.make ~file:"f.tdl" ~line:1 ~col:2 in
  match Support.Diag.wrap (fun () -> Support.Diag.error ~loc "oops") with
  | Error msg -> Alcotest.(check string) "located" "f.tdl:1:2: oops" msg
  | Ok _ -> Alcotest.fail "expected error"

let test_id_gen () =
  let g = Support.Id_gen.create () in
  let a = Support.Id_gen.next g in
  let b = Support.Id_gen.next g in
  let c = Support.Id_gen.next g in
  Alcotest.(check (list int)) "monotonic" [ 0; 1; 2 ] [ a; b; c ]

let test_typ_helpers () =
  let t = Ir.Typ.memref [ 2; 3; 4 ] Ir.Typ.F32 in
  Alcotest.(check int) "rank" 3 (Ir.Typ.memref_rank t);
  Alcotest.(check (option (list int))) "shape" (Some [ 2; 3; 4 ])
    (Ir.Typ.static_shape t);
  Alcotest.(check (option int)) "elements" (Some 24) (Ir.Typ.num_elements t);
  Alcotest.(check string) "render" "memref<2x3x4xf32>" (Ir.Typ.to_string t);
  let dyn = Ir.Typ.Mem_ref ([ Ir.Typ.Dynamic; Ir.Typ.Static 4 ], Ir.Typ.F32) in
  Alcotest.(check (option (list int))) "dynamic shape" None
    (Ir.Typ.static_shape dyn);
  Alcotest.(check string) "dynamic render" "memref<?x4xf32>"
    (Ir.Typ.to_string dyn);
  Alcotest.(check bool) "scalar" true (Ir.Typ.is_scalar Ir.Typ.Index);
  Alcotest.(check bool) "not scalar" false (Ir.Typ.is_scalar t)

let test_attr_accessors () =
  Alcotest.(check int) "int" 5 (Ir.Attr.get_int (Ir.Attr.Int 5));
  Alcotest.(check (list int)) "ints" [ 1; 2 ]
    (Ir.Attr.get_ints (Ir.Attr.Ints [ 1; 2 ]));
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Attr: expected int, got \"x\"") (fun () ->
      ignore (Ir.Attr.get_int (Ir.Attr.Str "x")));
  let g = Ir.Attr.Grouping [ [ 0; 1 ]; [ 2 ] ] in
  Alcotest.(check string) "grouping render" "{{0, 1}, 2}" (Ir.Attr.to_string g);
  Alcotest.(check bool) "equal" true
    (Ir.Attr.equal g (Ir.Attr.Grouping [ [ 0; 1 ]; [ 2 ] ]));
  Alcotest.(check bool) "not equal" false (Ir.Attr.equal g (Ir.Attr.Int 3))

let test_contraction_spec_errors () =
  let expect_fail s =
    match Support.Diag.wrap (fun () -> Workloads.Contraction_spec.parse s) with
    | Ok _ -> Alcotest.failf "expected rejection of %S" s
    | Error _ -> ()
  in
  expect_fail "ab-cd";
  expect_fail "aab-ab-b";
  expect_fail "abz-ab-b";
  expect_fail "ab--b";
  let t = Workloads.Contraction_spec.parse "abc-acd-db" in
  Alcotest.(check (list char)) "contracted" [ 'd' ]
    (Workloads.Contraction_spec.contracted t);
  Alcotest.(check (list char)) "free1" [ 'a'; 'c' ]
    (Workloads.Contraction_spec.free1 t);
  Alcotest.(check (list char)) "free2" [ 'b' ]
    (Workloads.Contraction_spec.free2 t);
  Alcotest.(check string) "roundtrip" "abc-acd-db"
    (Workloads.Contraction_spec.to_string t);
  Alcotest.(check (float 0.)) "flops"
    (2. *. 3. *. 4. *. 5. *. 6.)
    (Workloads.Contraction_spec.flops t
       ~sizes:[ ('a', 3); ('b', 4); ('c', 5); ('d', 6) ])

let suite =
  [
    Alcotest.test_case "locations" `Quick test_loc;
    Alcotest.test_case "diagnostics" `Quick test_diag;
    Alcotest.test_case "id generation" `Quick test_id_gen;
    Alcotest.test_case "type helpers" `Quick test_typ_helpers;
    Alcotest.test_case "attribute accessors" `Quick test_attr_accessors;
    Alcotest.test_case "contraction specs" `Quick test_contraction_spec_errors;
  ]
