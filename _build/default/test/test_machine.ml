(* Tests for the cache simulator, trace generator, BLAS model and the
   performance orderings the Figure-9 reproduction relies on. *)

open Ir
module MM = Machine.Machine_model
module C = Machine.Cache
module W = Workloads.Polybench

let test_cache_basics () =
  (* 4 sets x 2 ways x 64B lines = 512B. *)
  let c = C.create ~size:512 ~line:64 ~ways:2 in
  Alcotest.(check bool) "cold miss" false (C.access c 0);
  Alcotest.(check bool) "hit same line" true (C.access c 32);
  Alcotest.(check bool) "different line misses" false (C.access c 64);
  Alcotest.(check int) "accesses" 3 (C.accesses c);
  Alcotest.(check int) "misses" 2 (C.misses c)

let test_cache_lru_eviction () =
  let c = C.create ~size:512 ~line:64 ~ways:2 in
  (* Three lines mapping to the same set (stride = sets*line = 256). *)
  ignore (C.access c 0);
  ignore (C.access c 256);
  ignore (C.access c 512);
  (* 0 was least recently used: evicted. *)
  Alcotest.(check bool) "evicted line misses" false (C.access c 0);
  (* 512 still resident: 256 was evicted when 0 came back. *)
  Alcotest.(check bool) "mru line hits" true (C.access c 512)

let test_cache_associativity_conflicts () =
  (* Direct-mapped (1 way): two conflicting lines always miss; 2-way holds
     both. *)
  let dm = C.create ~size:256 ~line:64 ~ways:1 in
  let sa = C.create ~size:256 ~line:64 ~ways:2 in
  for _ = 1 to 10 do
    ignore (C.access dm 0);
    ignore (C.access dm 256);
    ignore (C.access sa 0);
    ignore (C.access sa 512)
  done;
  Alcotest.(check int) "direct-mapped thrashes" 20 (C.misses dm);
  Alcotest.(check int) "2-way keeps both" 2 (C.misses sa)

let test_hierarchy_levels () =
  let h =
    C.create_hierarchy
      ~l1:(C.create ~size:256 ~line:64 ~ways:2)
      ~l2:(C.create ~size:1024 ~line:64 ~ways:2)
      ~l3:(C.create ~size:4096 ~line:64 ~ways:4)
  in
  Alcotest.(check int) "cold access goes to memory" 4 (C.access_hierarchy h 0);
  Alcotest.(check int) "then hits L1" 1 (C.access_hierarchy h 0);
  (* Touch enough lines to evict from L1 but not L2. *)
  for i = 1 to 8 do
    ignore (C.access_hierarchy h (i * 64))
  done;
  Alcotest.(check int) "L2 hit after L1 eviction" 2 (C.access_hierarchy h 0)

let func_of src name =
  let m = Met.Emit_affine.translate src in
  Option.get (Core.find_func m name)

let test_vectorizability () =
  (* mm's innermost k loop: B[k][j] has stride N w.r.t. k -> not
     vectorizable. After interchange (j innermost) it would be. *)
  let f = func_of (W.mm ~ni:8 ~nj:8 ~nk:8 ()) "mm" in
  let loops = Affine.Loops.perfect_nest (List.hd (Affine.Loops.top_level_loops f)) in
  let innermost = List.nth loops 2 in
  Alcotest.(check bool) "k-innermost gemm not vectorizable" false
    (Machine.Trace.is_vectorizable innermost);
  (* A simple copy loop is vectorizable. *)
  let f2 =
    func_of
      "void f(float a[64], float b[64]) { for (int i = 0; i < 64; ++i) a[i] \
       = b[i]; }"
      "f"
  in
  let l2 = List.hd (Affine.Loops.top_level_loops f2) in
  Alcotest.(check bool) "copy loop vectorizable" true
    (Machine.Trace.is_vectorizable l2);
  (* Strided access defeats vectorization. *)
  let f3 =
    func_of
      "void f(float a[128]) { for (int i = 0; i < 64; ++i) a[2*i] = 1.0; }"
      "f"
  in
  let l3 = List.hd (Affine.Loops.top_level_loops f3) in
  Alcotest.(check bool) "strided store not vectorizable" false
    (Machine.Trace.is_vectorizable l3)

let test_trace_counts_gemm () =
  let n = 16 in
  let f = func_of (W.mm ~ni:n ~nj:n ~nk:n ()) "mm" in
  let report = Machine.Perf.time_func MM.intel_i9 f in
  let s = report.Machine.Perf.stats in
  let iters = float_of_int (n * n * n) in
  Alcotest.(check (float 0.)) "flops = 2*n^3"
    (2. *. iters)
    (s.Machine.Trace.flops_scalar +. s.Machine.Trace.flops_vector);
  Alcotest.(check (float 0.)) "accesses = 4 per iteration" (4. *. iters)
    s.Machine.Trace.accesses;
  Alcotest.(check bool) "time positive" true (report.Machine.Perf.seconds > 0.)

let test_tiling_improves_gemm_locality () =
  (* The load-bearing property behind Figure 9: tiled gemm beats naive
     once the working set exceeds the cache (at 64 everything fits and
     tiling is neutral; 128 is past L1). *)
  let n = 128 in
  let src = W.mm ~ni:n ~nj:n ~nk:n () in
  let naive = func_of src "mm" in
  let tiled = func_of src "mm" in
  Transforms.Loop_tile.tile_all tiled ~size:16;
  let t_naive = (Machine.Perf.time_func MM.amd_2920x naive).Machine.Perf.seconds in
  let t_tiled = (Machine.Perf.time_func MM.amd_2920x tiled).Machine.Perf.seconds in
  Alcotest.(check bool)
    (Printf.sprintf "tiled (%.2e) < naive (%.2e)" t_tiled t_naive)
    true (t_tiled < t_naive)

let test_blas_model_orderings () =
  let m = MM.amd_2920x in
  let level3 = Machine.Blas_model.gemm_seconds m ~m:256 ~n:256 ~k:256 in
  let level3_gflops = 2. *. (256. ** 3.) /. level3 /. 1e9 in
  Alcotest.(check bool) "gemm below library peak" true
    (level3_gflops <= m.MM.blas_peak_gflops);
  Alcotest.(check bool) "gemm above half peak at 256" true
    (level3_gflops > 0.3 *. m.MM.blas_peak_gflops);
  (* gemv is memory bound: far below peak. *)
  let l2_time = Machine.Blas_model.gemv_seconds m ~m:256 ~n:256 in
  let l2_gflops = 2. *. (256. ** 2.) /. l2_time /. 1e9 in
  Alcotest.(check bool) "gemv memory bound" true
    (l2_gflops < 0.2 *. m.MM.blas_peak_gflops);
  (* Call overhead dominates tiny calls. *)
  let tiny = Machine.Blas_model.gemm_seconds m ~m:4 ~n:4 ~k:4 in
  Alcotest.(check bool) "overhead floor" true
    (tiny >= m.MM.blas_call_overhead_s)

let test_blis_codegen_between_loops_and_library () =
  let m = MM.amd_2920x in
  let lib = Machine.Blas_model.gemm_seconds m ~m:256 ~n:256 ~k:256 in
  let blis = Machine.Blas_model.blis_codegen_gemm_seconds m ~m:256 ~n:256 ~k:256 in
  Alcotest.(check bool) "blis slower than vendor library" true (blis > lib)

let test_figure9_headline_ordering () =
  (* gemm at a modest size: clang < pluto-default < mlt-blas, and
     mlt-blas is the fastest of all configurations (level-3 story). *)
  let src = W.gemm ~ni:128 ~nj:128 ~nk:128 () in
  let time c = (Mlt.Pipeline.time c MM.amd_2920x src).Machine.Perf.seconds in
  let t_clang = time Mlt.Pipeline.Clang_O3 in
  let t_pluto = time Mlt.Pipeline.Pluto_default in
  let t_blas = time Mlt.Pipeline.Mlt_blas in
  Alcotest.(check bool)
    (Printf.sprintf "pluto (%.2e) < clang (%.2e)" t_pluto t_clang)
    true (t_pluto < t_clang);
  Alcotest.(check bool)
    (Printf.sprintf "blas (%.2e) < pluto (%.2e)" t_blas t_pluto)
    true (t_blas < t_pluto)

let test_level2_overhead_story () =
  (* The paper's §5.2 level-2 story: the library call overhead keeps
     MLT-Blas from beating the autotuned loop code on atax — Pluto-best
     yields code "as fast or faster" than the BLAS substitution. *)
  let src = W.atax ~m:128 ~n:128 () in
  let time c = (Mlt.Pipeline.time c MM.amd_2920x src).Machine.Perf.seconds in
  let t_blas = time Mlt.Pipeline.Mlt_blas in
  let t_best = time Mlt.Pipeline.Pluto_best in
  Alcotest.(check bool)
    (Printf.sprintf "pluto-best (%.2e) <= blas (%.2e) on level-2" t_best t_blas)
    true (t_best <= t_blas)

let suite =
  [
    Alcotest.test_case "cache basics" `Quick test_cache_basics;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache associativity conflicts" `Quick
      test_cache_associativity_conflicts;
    Alcotest.test_case "hierarchy levels" `Quick test_hierarchy_levels;
    Alcotest.test_case "vectorizability analysis" `Quick test_vectorizability;
    Alcotest.test_case "trace counts gemm" `Quick test_trace_counts_gemm;
    Alcotest.test_case "tiling improves locality" `Quick
      test_tiling_improves_gemm_locality;
    Alcotest.test_case "blas model orderings" `Quick test_blas_model_orderings;
    Alcotest.test_case "blis codegen between loops and library" `Quick
      test_blis_codegen_between_loops_and_library;
    Alcotest.test_case "figure 9 headline ordering (gemm)" `Quick
      test_figure9_headline_ordering;
    Alcotest.test_case "level-2 overhead story (atax)" `Quick
      test_level2_overhead_story;
  ]
