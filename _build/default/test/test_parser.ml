(* Round-trip tests for the textual IR printer/parser pair. *)

open Ir
module W = Workloads.Polybench

let roundtrip_once name (m : Core.op) =
  let printed = Printer.op_to_string m in
  let reparsed =
    try Parser.parse_module printed
    with Support.Diag.Error (loc, msg) ->
      Alcotest.failf "%s: parse failed: %s\nIR was:\n%s" name
        (Support.Diag.to_string loc msg)
        printed
  in
  let printed2 = Printer.op_to_string reparsed in
  if printed <> printed2 then
    Alcotest.failf "%s: round-trip mismatch.\nFirst:\n%s\nSecond:\n%s" name
      printed printed2;
  reparsed

let test_roundtrip_all_workloads () =
  List.iter
    (fun (name, src) ->
      ignore (roundtrip_once name (Met.Emit_affine.translate src)))
    (W.tiny_suite ())

let test_roundtrip_preserves_semantics () =
  List.iter
    (fun (name, src) ->
      let m = Met.Emit_affine.translate src in
      let m2 = roundtrip_once name m in
      let fname =
        (List.hd (Met.C_parser.parse_program src)).Met.C_ast.k_name
      in
      if not (Interp.Eval.equivalent m m2 fname ~seed:21) then
        Alcotest.failf "%s: reparsed IR computes differently" name)
    (W.tiny_suite ())

let test_roundtrip_raised_linalg () =
  (* TTGT-raised IR: linalg ops, fills, allocs. *)
  let spec = Workloads.Contraction_spec.parse "abc-acd-db" in
  let sizes = [ ('a', 4); ('b', 5); ('c', 3); ('d', 6) ] in
  let src =
    Workloads.Contraction_spec.c_source spec ~sizes ~init:true ~name:"kern" ()
  in
  let m = Met.Emit_affine.translate src in
  ignore (Mlt.Tactics.raise_to_linalg (Option.get (Core.find_func m "kern")));
  ignore (roundtrip_once "ttgt" m)

let test_roundtrip_blas_and_affine_matmul () =
  let m = Mlt.Pipeline.prepare Mlt.Pipeline.Mlt_blas (W.gemm ~ni:8 ~nj:8 ~nk:8 ()) in
  ignore (roundtrip_once "blas" m);
  let m2 =
    Mlt.Pipeline.prepare Mlt.Pipeline.Mlt_affine_blis (W.mm ~ni:8 ~nj:8 ~nk:8 ())
  in
  ignore (roundtrip_once "affine.matmul" m2)

let test_roundtrip_tiled_min_bounds () =
  (* Tiling produces min() upper bounds and non-zero lower bounds. *)
  let m = Met.Emit_affine.translate (W.mm ~ni:10 ~nj:10 ~nk:10 ()) in
  Transforms.Loop_tile.tile_all m ~size:4;
  let m2 = roundtrip_once "tiled" m in
  Alcotest.(check bool) "still equivalent" true
    (Interp.Eval.equivalent m m2 "mm" ~seed:2)

let test_roundtrip_scf_level () =
  let m = Met.Emit_affine.translate (W.mm ~ni:6 ~nj:6 ~nk:6 ()) in
  Transforms.Lower_affine.run m;
  let m2 = roundtrip_once "scf" m in
  Alcotest.(check bool) "still equivalent" true
    (Interp.Eval.equivalent m m2 "mm" ~seed:8)

let test_roundtrip_contract_generic () =
  (* linalg.contract carries affine_map<...> list attributes. *)
  let module M = Affine_map in
  let f =
    Core.create_func ~name:"c"
      ~arg_types:
        [
          Typ.memref [ 4; 5 ] Typ.F32;
          Typ.memref [ 5; 3 ] Typ.F32;
          Typ.memref [ 4; 3 ] Typ.F32;
        ]
      ~arg_hints:[ "A"; "B"; "C" ] ()
  in
  let b = Builder.at_end (Core.func_entry f) in
  let maps =
    [
      M.minor_identity ~n_dims:3 ~results:[ 0; 2 ];
      M.minor_identity ~n_dims:3 ~results:[ 2; 1 ];
      M.minor_identity ~n_dims:3 ~results:[ 0; 1 ];
    ]
  in
  let[@warning "-8"] [ a; bv; c ] = Core.func_args f in
  ignore (Linalg.Linalg_ops.contract b ~maps a bv c);
  ignore (Builder.build b "func.return");
  let m = Core.create_module () in
  Core.append_op (Core.module_block m) f;
  ignore (roundtrip_once "contract" m)

let test_parse_errors () =
  let expect_fail src =
    match Support.Diag.wrap (fun () -> Parser.parse_module src) with
    | Ok _ -> Alcotest.failf "expected parse error for %S" src
    | Error _ -> ()
  in
  expect_fail "builtin.module {";
  expect_fail "builtin.module { func.func gemm() { } }";
  expect_fail
    "builtin.module { func.func @f() { %0 = arith.addf %x, %y : f32 } }";
  expect_fail
    "builtin.module { func.func @f(%A: memref<2xf32>) { affine.store %A, \
     %A[0] : memref<2xf32> } }"

let test_parse_hand_written () =
  (* Hand-written IR, not printer output: extra whitespace, comments. *)
  let src =
    {|builtin.module {
  // a tiny zeroing function
  func.func @zero(%A: memref<3x3xf32>) {
    affine.for %i = 0 to 3 {
      affine.for %j = 0 to 3 {
        %c = arith.constant 0.0 : f32
        affine.store %c, %A[%i, %j] : memref<3x3xf32>
      }
    }
    func.return
  }
}|}
  in
  let m = Parser.parse_module src in
  let f = Option.get (Core.find_func m "zero") in
  let buf = Interp.Buffer.create [ 3; 3 ] in
  Interp.Buffer.randomize ~seed:1 buf;
  Interp.Eval.run_func f [ buf ];
  Alcotest.(check (float 0.)) "zeroed" 0. buf.Interp.Buffer.data.(4)

let suite =
  [
    Alcotest.test_case "roundtrip all workloads" `Quick
      test_roundtrip_all_workloads;
    Alcotest.test_case "roundtrip preserves semantics" `Quick
      test_roundtrip_preserves_semantics;
    Alcotest.test_case "roundtrip raised linalg" `Quick
      test_roundtrip_raised_linalg;
    Alcotest.test_case "roundtrip blas and affine.matmul" `Quick
      test_roundtrip_blas_and_affine_matmul;
    Alcotest.test_case "roundtrip tiled min-bounds" `Quick
      test_roundtrip_tiled_min_bounds;
    Alcotest.test_case "roundtrip scf level" `Quick test_roundtrip_scf_level;
    Alcotest.test_case "roundtrip linalg.contract maps" `Quick
      test_roundtrip_contract_generic;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse hand-written IR" `Quick test_parse_hand_written;
  ]
