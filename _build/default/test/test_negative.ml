(* Negative controls: the Polybench kernels the paper excluded from
   Figure 9 because they do not map onto the available Linalg operations.
   The tactics must leave them alone (or raise only the genuinely
   matching sub-computations), and whatever happens must preserve
   semantics. *)

open Ir
module W = Workloads.Polybench

let count_ops m name =
  let c = ref 0 in
  Core.walk m (fun op -> if String.equal op.Core.o_name name then incr c);
  !c

let raise_all src =
  let m = Met.Emit_affine.translate src in
  let n = Mlt.Tactics.raise_to_linalg m in
  Verifier.verify m;
  (m, n)

let test_syrk_not_raised () =
  (* C += A * A^T uses the same array twice: the array-distinctness
     constraint of the access matchers must reject every tactic. *)
  let m, n = raise_all (W.syrk_like ~n:8 ~k:8 ()) in
  Alcotest.(check int) "nothing raised" 0 n;
  Alcotest.(check int) "loops intact" 3 (count_ops m "affine.for")

let test_trmm_not_raised () =
  (* In-place B += A * B aliases input and output. *)
  let m, n = raise_all (W.trmm_like ~n:8 ()) in
  Alcotest.(check int) "nothing raised" 0 n;
  Alcotest.(check int) "loops intact" 3 (count_ops m "affine.for")

let test_doitgen_partial () =
  (* The inner contraction is a legitimate matvec-transposed shape after
     distribution; the writeback copy must stay at the loop level. The
     result must still compute doitgen. *)
  let src = W.doitgen ~r:4 ~q:4 ~p:4 () in
  let reference = Met.Emit_affine.translate src in
  let m, _ = raise_all src in
  Alcotest.(check bool) "no matmul invented" true
    (count_ops m "linalg.matmul" = 0);
  Alcotest.(check bool) "equivalent regardless" true
    (Interp.Eval.equivalent reference m "doitgen" ~seed:127)

let test_negative_controls_semantics () =
  (* Whatever the tactics do or do not do, semantics hold. *)
  List.iter
    (fun (name, src) ->
      let reference = Met.Emit_affine.translate src in
      let m, _ = raise_all src in
      let fname =
        (List.hd (Met.C_parser.parse_program src)).Met.C_ast.k_name
      in
      if not (Interp.Eval.equivalent reference m fname ~seed:131) then
        Alcotest.failf "%s: raising changed semantics" name)
    [
      ("syrk", W.syrk_like ~n:6 ~k:6 ());
      ("trmm", W.trmm_like ~n:6 ());
      ("doitgen", W.doitgen ~r:3 ~q:3 ~p:3 ());
    ]

let suite =
  [
    Alcotest.test_case "syrk not raised (same input twice)" `Quick
      test_syrk_not_raised;
    Alcotest.test_case "trmm not raised (in-place aliasing)" `Quick
      test_trmm_not_raised;
    Alcotest.test_case "doitgen: no spurious matmul" `Quick
      test_doitgen_partial;
    Alcotest.test_case "negative controls keep semantics" `Quick
      test_negative_controls_semantics;
  ]
