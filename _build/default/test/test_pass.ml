(* Tests for the pass manager (timing instrumentation used by §5.2) and
   the dialect registry. *)

open Ir
module W = Workloads.Polybench

let test_manager_runs_in_order () =
  let log = ref [] in
  let mk name = Pass.make ~name (fun _ -> log := name :: !log) in
  let pm = Pass.create_manager () in
  Pass.add_all pm [ mk "a"; mk "b"; mk "c" ];
  let m = Met.Emit_affine.translate (W.mm ~ni:4 ~nj:4 ~nk:4 ()) in
  Pass.run pm m;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log)

let test_manager_records_timings () =
  let pm = Pass.create_manager () in
  Pass.add_all pm
    [
      Transforms.Canonicalize.pass;
      Transforms.Lower_linalg.pass;
      Transforms.Lower_affine.pass;
      Transforms.Dce.pass;
    ];
  let m = Met.Emit_affine.translate (W.gemm ~ni:8 ~nj:8 ~nk:8 ()) in
  Pass.run pm m;
  let ts = Pass.timings pm in
  Alcotest.(check int) "one timing per pass" 4 (List.length ts);
  Alcotest.(check (list string)) "names"
    [ "canonicalize"; "lower-linalg-to-affine"; "lower-affine-to-scf"; "dce" ]
    (List.map (fun t -> t.Pass.pass_name) ts);
  Alcotest.(check bool) "total accumulates" true (Pass.total_seconds pm >= 0.);
  Pass.clear_timings pm;
  Alcotest.(check int) "cleared" 0 (List.length (Pass.timings pm))

let test_manager_verify_each_catches_breakage () =
  let breaker =
    Pass.make ~name:"breaker" (fun root ->
        (* Introduce a use of an undefined value. *)
        let f = Option.get (Core.find_func root "mm") in
        let loop = List.hd (Affine.Loops.top_level_loops f) in
        let iv = Affine.Affine_ops.for_iv loop in
        let b = Builder.at_end (Core.func_entry f) in
        ignore (Affine.Affine_ops.apply b (Affine_map.identity 1) [ iv ]))
  in
  let pm = Pass.create_manager ~verify_each:true () in
  Pass.add pm breaker;
  let m = Met.Emit_affine.translate (W.mm ~ni:4 ~nj:4 ~nk:4 ()) in
  match Support.Diag.wrap (fun () -> Pass.run pm m) with
  | Ok () -> Alcotest.fail "expected verification failure naming the pass"
  | Error msg ->
      Alcotest.(check bool) "names the pass" true
        (Astring_contains.contains msg "breaker")

let test_full_pipeline_as_passes () =
  (* The whole raising+lowering pipeline expressed through the manager. *)
  let reference = Met.Emit_affine.translate (W.gemm ~ni:8 ~nj:8 ~nk:8 ()) in
  let m = Met.Emit_affine.translate (W.gemm ~ni:8 ~nj:8 ~nk:8 ()) in
  let pm = Pass.create_manager ~verify_each:true () in
  Pass.add_all pm
    [
      Transforms.Canonicalize.pass;
      Pass.make ~name:"raise-to-linalg" (fun root ->
          ignore (Mlt.Tactics.raise_to_linalg root));
      Mlt.Raise_chain.pass;
      Mlt.To_blas.pass;
      Transforms.Lower_linalg.pass;
      Transforms.Lower_affine.pass;
      Transforms.Dce.pass;
    ];
  Pass.run pm m;
  Alcotest.(check bool) "equivalent after 7-pass pipeline" true
    (Interp.Eval.equivalent reference m "gemm" ~seed:83)

let test_dialect_registry () =
  Std_dialect.Arith.register ();
  Std_dialect.Scf.register ();
  Affine.Affine_ops.register ();
  Linalg.Linalg_ops.register ();
  Blas.Blas_ops.register ();
  let ops = Dialect.registered_ops () in
  List.iter
    (fun name ->
      if not (List.mem name ops) then Alcotest.failf "%s not registered" name)
    [
      "arith.addf"; "affine.for"; "affine.matmul"; "scf.for";
      "linalg.matmul"; "linalg.contract"; "blas.sgemm"; "memref.load";
    ];
  Alcotest.(check bool) "addf commutative" true
    (Dialect.is_commutative
       (Core.create_op ~operands:[] ~result_types:[] "arith.addf"));
  Alcotest.(check bool) "subf not commutative" false
    (Dialect.is_commutative
       (Core.create_op ~operands:[] ~result_types:[] "arith.subf"));
  Alcotest.(check string) "dialect_of" "affine" (Dialect.dialect_of "affine.for")

let suite =
  [
    Alcotest.test_case "manager runs in order" `Quick
      test_manager_runs_in_order;
    Alcotest.test_case "manager records timings" `Quick
      test_manager_records_timings;
    Alcotest.test_case "verify-each names the breaking pass" `Quick
      test_manager_verify_each_catches_breakage;
    Alcotest.test_case "full pipeline through the manager" `Quick
      test_full_pipeline_as_passes;
    Alcotest.test_case "dialect registry" `Quick test_dialect_registry;
  ]
